// Package privbayes implements a PrivBayes-style baseline (Zhang et al.,
// TODS 2017): privately fit a Bayesian network over the attributes (greedy
// structure selection by mutual information through the exponential
// mechanism), estimate the conditional probability tables with Laplace
// noise, sample a synthetic dataset from the network, and answer workloads
// on the synthetic data. Like the original, accuracy is data-dependent and
// degrades sharply on workloads that probe joint structure the network does
// not capture — the behaviour behind its large ratios in Table 3.
package privbayes

import (
	"math"
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/mech"
)

// Options configures the mechanism.
type Options struct {
	Degree     int // max parents per node (default 1: a tree/Chow-Liu style net)
	SampleSize int // synthetic records to draw (default: same as input)
}

// Synthesize runs the full PrivBayes pipeline and returns a synthetic
// dataset over the same domain, generated under ε-differential privacy.
func Synthesize(data *dataset.Categorical, eps float64, rng *rand.Rand, opts Options) *dataset.Categorical {
	if opts.Degree <= 0 {
		opts.Degree = 1
	}
	if opts.SampleSize <= 0 {
		opts.SampleSize = len(data.Records)
	}
	dom := data.Domain
	d := dom.NumAttrs()

	// Budget split: half for structure, half for parameters (as in the
	// paper).
	epsStruct := eps / 2
	epsParam := eps / 2

	order, parents := selectStructure(data, epsStruct, rng, opts.Degree)
	cpts := estimateCPTs(data, order, parents, epsParam, rng)

	// Ancestral sampling.
	recs := make([][]int, opts.SampleSize)
	for s := range recs {
		rec := make([]int, d)
		for _, a := range order {
			idx := 0
			stride := 1
			for _, p := range parents[a] {
				idx += rec[p] * stride
				stride *= dom.Attr(p).Size
			}
			rec[a] = samplePMF(rng, cpts[a][idx])
		}
		recs[s] = rec
	}
	return &dataset.Categorical{Domain: dom, Records: recs}
}

// selectStructure greedily picks an attribute order and parent sets using
// noisy mutual information: each step chooses, via the exponential
// mechanism, the (attribute, parent-set) pair with maximal MI with the
// already-placed attributes.
func selectStructure(data *dataset.Categorical, eps float64, rng *rand.Rand, degree int) (order []int, parents [][]int) {
	dom := data.Domain
	d := dom.NumAttrs()
	parents = make([][]int, d)
	placed := make([]bool, d)

	// First attribute: pick uniformly at random (no MI defined yet).
	first := rng.IntN(d)
	order = append(order, first)
	placed[first] = true

	// MI sensitivity bound for the exponential mechanism; the precise
	// constant from the paper is log(n)/n-scaled — a fixed surrogate works
	// for the comparison here because only score *differences* matter.
	perStep := eps / float64(d-1)
	for len(order) < d {
		type cand struct {
			attr int
			par  []int
			mi   float64
		}
		var cands []cand
		for a := 0; a < d; a++ {
			if placed[a] {
				continue
			}
			for _, par := range parentSets(order, degree) {
				cands = append(cands, cand{a, par, mutualInfo(data, a, par)})
			}
		}
		// Exponential mechanism via Gumbel noise on scores.
		bestIdx, bestScore := -1, math.Inf(-1)
		for i, c := range cands {
			score := perStep*c.mi/2 + gumbel(rng)
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		chosen := cands[bestIdx]
		order = append(order, chosen.attr)
		parents[chosen.attr] = chosen.par
		placed[chosen.attr] = true
	}
	return order, parents
}

// parentSets enumerates subsets of the placed attributes up to the degree
// (singletons and, for degree 2, pairs; the empty set is always included).
func parentSets(placed []int, degree int) [][]int {
	out := [][]int{{}}
	for i, a := range placed {
		out = append(out, []int{a})
		if degree >= 2 {
			for _, b := range placed[i+1:] {
				out = append(out, []int{a, b})
			}
		}
	}
	return out
}

// mutualInfo estimates I(A; Parents) from the records.
func mutualInfo(data *dataset.Categorical, attr int, par []int) float64 {
	if len(par) == 0 {
		return 0
	}
	dom := data.Domain
	na := dom.Attr(attr).Size
	np := 1
	for _, p := range par {
		np *= dom.Attr(p).Size
	}
	joint := make([]float64, na*np)
	for _, rec := range data.Records {
		pi := 0
		stride := 1
		for _, p := range par {
			pi += rec[p] * stride
			stride *= dom.Attr(p).Size
		}
		joint[rec[attr]*np+pi]++
	}
	n := float64(len(data.Records))
	pa := make([]float64, na)
	pp := make([]float64, np)
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			v := joint[a*np+p]
			pa[a] += v
			pp[p] += v
		}
	}
	mi := 0.0
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			j := joint[a*np+p] / n
			if j > 0 {
				mi += j * math.Log(j*n*n/(pa[a]*pp[p]))
			}
		}
	}
	return mi
}

// estimateCPTs builds noisy conditional probability tables: for each
// attribute, the joint counts with its parents get Laplace noise with the
// per-table budget, then are clamped and normalized per parent setting.
func estimateCPTs(data *dataset.Categorical, order []int, parents [][]int, eps float64, rng *rand.Rand) [][][]float64 {
	dom := data.Domain
	d := dom.NumAttrs()
	perTable := eps / float64(d)
	cpts := make([][][]float64, d)
	for _, a := range order {
		na := dom.Attr(a).Size
		np := 1
		for _, p := range parents[a] {
			np *= dom.Attr(p).Size
		}
		counts := make([][]float64, np)
		for i := range counts {
			counts[i] = make([]float64, na)
		}
		for _, rec := range data.Records {
			pi := 0
			stride := 1
			for _, p := range parents[a] {
				pi += rec[p] * stride
				stride *= dom.Attr(p).Size
			}
			counts[pi][rec[a]]++
		}
		for pi := range counts {
			total := 0.0
			for v := range counts[pi] {
				counts[pi][v] += mech.Laplace(rng, 2/perTable)
				if counts[pi][v] < 0 {
					counts[pi][v] = 0
				}
				total += counts[pi][v]
			}
			if total <= 0 {
				for v := range counts[pi] {
					counts[pi][v] = 1 / float64(na)
				}
			} else {
				for v := range counts[pi] {
					counts[pi][v] /= total
				}
			}
		}
		cpts[a] = counts
	}
	return cpts
}

func samplePMF(rng *rand.Rand, pmf []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range pmf {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(pmf) - 1
}

func gumbel(rng *rand.Rand) float64 {
	return -math.Log(-math.Log(rng.Float64() + 1e-300))
}

// ---------------------------------------------------------------------------
// Error estimation
// ---------------------------------------------------------------------------

// ExpectedSquaredError estimates the data-dependent expected total squared
// error of answering a workload from PrivBayes synthetic data, averaged
// over trials. sqErr maps the difference vector x_syn − x_true to the total
// squared error over all workload queries (use mech.WorkloadQuadraticError
// bound to the workload — exact even for workloads with billions of
// queries).
func ExpectedSquaredError(data *dataset.Categorical, sqErr func(diff []float64) float64,
	eps float64, trials int, seed uint64, opts Options) (float64, error) {

	truth := data.Vector()
	total := 0.0
	for t := 0; t < trials; t++ {
		rng := rand.New(rand.NewPCG(seed, uint64(t)*7919))
		syn := Synthesize(data, eps, rng, opts)
		diff := syn.Vector()
		for i, v := range truth {
			diff[i] -= v
		}
		total += sqErr(diff)
	}
	return total / float64(trials), nil
}
