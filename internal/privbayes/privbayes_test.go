package privbayes

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mech"
	"repro/internal/schema"
	"repro/internal/workload"
)

func TestSynthesizeShape(t *testing.T) {
	data := dataset.AdultLike(800, 1)
	rng := rand.New(rand.NewPCG(2, 2))
	syn := Synthesize(data, 1.0, rng, Options{})
	if len(syn.Records) != 800 {
		t.Fatalf("synthetic records %d", len(syn.Records))
	}
	if syn.Domain.Size() != data.Domain.Size() {
		t.Fatal("domain changed")
	}
	for _, r := range syn.Records {
		for i, v := range r {
			if v < 0 || v >= syn.Domain.Attr(i).Size {
				t.Fatalf("record value %d out of range for attr %d", v, i)
			}
		}
	}
}

func TestMutualInfoProperties(t *testing.T) {
	// MI with an independent attribute should be near zero; with a copy of
	// itself, near the entropy (positive and large).
	dom := schema.Sizes(4, 4, 4)
	rng := rand.New(rand.NewPCG(3, 3))
	recs := make([][]int, 3000)
	for i := range recs {
		a := rng.IntN(4)
		recs[i] = []int{a, a, rng.IntN(4)} // attr1 copies attr0; attr2 independent
	}
	data := &dataset.Categorical{Domain: dom, Records: recs}
	dep := mutualInfo(data, 1, []int{0})
	indep := mutualInfo(data, 2, []int{0})
	if dep < 1.0 {
		t.Fatalf("MI of dependent attrs %v too small", dep)
	}
	if indep > 0.05 {
		t.Fatalf("MI of independent attrs %v too large", indep)
	}
}

func TestStructurePrefersCorrelatedParents(t *testing.T) {
	// With a generous budget, structure selection should attach the copied
	// attribute to its source.
	dom := schema.Sizes(6, 6, 6)
	rng := rand.New(rand.NewPCG(4, 4))
	recs := make([][]int, 5000)
	for i := range recs {
		a := rng.IntN(6)
		recs[i] = []int{a, a, rng.IntN(6)}
	}
	data := &dataset.Categorical{Domain: dom, Records: recs}
	found := 0
	const tries = 10
	for tr := 0; tr < tries; tr++ {
		rng2 := rand.New(rand.NewPCG(uint64(tr), 9))
		_, parents := selectStructure(data, 1000.0, rng2, 1)
		if (len(parents[0]) == 1 && parents[0][0] == 1) || (len(parents[1]) == 1 && parents[1][0] == 0) {
			found++
		}
	}
	if found < tries/2 {
		t.Fatalf("correlated parent chosen only %d/%d times", found, tries)
	}
}

func TestSynthesizePreservesMarginalsAtHighEps(t *testing.T) {
	data := dataset.CPSLike(5000, 5)
	rng := rand.New(rand.NewPCG(6, 6))
	syn := Synthesize(data, 1000.0, rng, Options{SampleSize: 20000})
	// First-attribute marginal of synthetic data should resemble the truth.
	n0 := data.Domain.Attr(0).Size
	truth := make([]float64, n0)
	for _, r := range data.Records {
		truth[r[0]]++
	}
	got := make([]float64, n0)
	for _, r := range syn.Records {
		got[r[0]]++
	}
	// Compare as distributions (L1 distance).
	l1 := 0.0
	for i := 0; i < n0; i++ {
		l1 += math.Abs(truth[i]/5000 - got[i]/20000)
	}
	if l1 > 0.15 {
		t.Fatalf("marginal L1 distance %v too large", l1)
	}
}

func TestExpectedSquaredError(t *testing.T) {
	data := dataset.AdultLike(1000, 7)
	dom := data.Domain
	w := workload.KWayMarginals(dom, 1)
	sqErr := func(diff []float64) float64 { return mech.WorkloadQuadraticError(w, diff) }
	e, err := ExpectedSquaredError(data, sqErr, 1.0, 2, 11, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || math.IsInf(e, 0) || math.IsNaN(e) {
		t.Fatalf("error = %v", e)
	}
}
