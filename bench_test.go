// Benchmarks regenerating every table and figure of the paper's evaluation,
// at reduced (ScaleSmall) settings so `go test -bench=.` completes on a
// laptop. Run `go run ./cmd/experiments -scale default <name>` for the
// full-size outputs recorded in EXPERIMENTS.md.
package hdmm_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/mat"
)

// BenchmarkMulParallel measures the dense GEMM kernel (the inner loop of
// every OPT₀ gradient evaluation) at n=768, serial vs sharded across 4
// cores. The two paths produce bit-identical results; the ratio is pure
// speedup.
func BenchmarkMulParallel(b *testing.B) {
	n := 768
	a := mat.NewDense(n, n)
	c := mat.NewDense(n, n)
	for i, d := 0, a.Data(); i < len(d); i++ {
		d[i] = float64(i%17) * 0.25
	}
	for i, d := 0, c.Data(); i < len(d); i++ {
		d[i] = float64(i%13) * 0.5
	}
	dst := mat.NewDense(n, n)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("Workers=%d", workers), func(b *testing.B) {
			prev := mat.SetWorkers(workers)
			defer mat.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				mat.Mul(dst, a, c)
			}
		})
	}
}

func benchExperiment(b *testing.B, f func(experiments.Scale) string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out := f(experiments.ScaleSmall)
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (error ratios across all datasets and
// algorithms).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, experiments.Table3) }

// BenchmarkTable4a regenerates Table 4(a) (1-D range-query error ratios).
func BenchmarkTable4a(b *testing.B) { benchExperiment(b, experiments.Table4a) }

// BenchmarkTable4b regenerates Table 4(b) (2-D range-query error ratios).
func BenchmarkTable4b(b *testing.B) { benchExperiment(b, experiments.Table4b) }

// BenchmarkTable5 regenerates Table 5 (up-to-K-way marginals on 10^8).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, experiments.Table5) }

// BenchmarkTable6 regenerates Table 6 (DAWA with GreedyH vs OPT₀ stage 2).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, experiments.Table6) }

// BenchmarkFig1a regenerates Figure 1(a) (select runtime, Prefix 1D).
func BenchmarkFig1a(b *testing.B) { benchExperiment(b, experiments.Fig1a) }

// BenchmarkFig1b regenerates Figure 1(b) (select runtime, Prefix 3D).
func BenchmarkFig1b(b *testing.B) { benchExperiment(b, experiments.Fig1b) }

// BenchmarkFig1c regenerates Figure 1(c) (select runtime, 3-way marginals).
func BenchmarkFig1c(b *testing.B) { benchExperiment(b, experiments.Fig1c) }

// BenchmarkFig1d regenerates Figure 1(d) (measure+reconstruct runtime).
func BenchmarkFig1d(b *testing.B) { benchExperiment(b, experiments.Fig1d) }

// BenchmarkFig2 regenerates Figure 2 (OPT₀ error vs p).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, experiments.Fig2) }

// BenchmarkFig3 regenerates Figure 3 (local-minima distribution).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, experiments.Fig3) }

// BenchmarkFig4 regenerates Figure 4 (strategy visualization).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, experiments.Fig4) }

// BenchmarkFig5 regenerates Figure 5 (OPT₀ vs OPT⊗ quality over time).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Figure 6 (OPT₀ and OPT_M scalability).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, experiments.Fig6) }

// BenchmarkAblation regenerates the operator-set ablation of DESIGN.md.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, experiments.Ablation) }
