// Package hdmm is a Go implementation of the High-Dimensional Matrix
// Mechanism (McKenna, Miklau, Hay, Machanavajjhala: "Optimizing error of
// high-dimensional statistical queries under differential privacy",
// PVLDB 11(10), 2018).
//
// HDMM answers a workload of predicate counting queries over a
// multi-dimensional categorical domain under ε-differential privacy. It
// encodes the workload implicitly as a weighted union of Kronecker products
// (never materializing the m×N workload matrix), searches a restricted
// strategy space for a measurement strategy with minimal expected total
// squared error, measures the strategy privately with the Laplace
// mechanism, and reconstructs workload answers by least squares.
//
// Typical use:
//
//	dom := hdmm.NewDomain(
//		hdmm.Attribute{Name: "sex", Size: 2},
//		hdmm.Attribute{Name: "age", Size: 115},
//	)
//	w, _ := hdmm.NewWorkload(dom,
//		hdmm.NewProduct(hdmm.Identity(2), hdmm.AllRange(115)),
//	)
//	res, _ := hdmm.Run(w, dom.DataVector(records), 1.0, hdmm.Options{Seed: 7})
//	fmt.Println(res.Answers)
//
// Strategy selection never looks at the data, so it consumes no privacy
// budget; the Laplace measurement is the only data access and the whole
// pipeline satisfies ε-differential privacy (Theorem 7 of the paper).
package hdmm

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/kron"
	"repro/internal/mat"
	"repro/internal/mech"
	"repro/internal/registry"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/server"
	"repro/internal/workload"
)

// Attribute is a named categorical attribute with a finite domain size.
type Attribute = schema.Attribute

// Domain is an ordered list of attributes defining dom(R) and the
// data-vector indexing.
type Domain = schema.Domain

// NewDomain builds a domain from attributes.
func NewDomain(attrs ...Attribute) *Domain { return schema.NewDomain(attrs...) }

// PredicateSet is a set of 0/1 predicates over one attribute.
type PredicateSet = workload.PredicateSet

// Predicate-set building blocks (Section 3.3 of the paper).
var (
	// Identity returns one point predicate per domain element (I).
	Identity = workload.Identity
	// Total returns the single always-true predicate (T).
	Total = workload.Total
	// Prefix returns the CDF workload of all prefixes (P).
	Prefix = workload.Prefix
	// AllRange returns all n(n+1)/2 interval queries (R).
	AllRange = workload.AllRange
	// WidthRange returns all intervals of one fixed width.
	WidthRange = workload.WidthRange
	// Permute relabels the domain of a predicate set.
	Permute = workload.Permute
	// NewExplicit wraps an arbitrary 0/1 predicate matrix.
	NewExplicit = workload.NewExplicit
)

// Product is one Kronecker-product term of a workload.
type Product = workload.Product

// Textual workload-spec parsing, shared by the CLI flags, serve -queries
// files, and the HTTP API: "I,R" is a product spec (one predicate-set spec
// per attribute), with building blocks I, T, P, R, W<k>.

// ParseSpec parses one per-attribute predicate-set spec ("R") for an
// attribute of size n.
func ParseSpec(s string, n int) (PredicateSet, error) { return workload.ParseSpec(s, n) }

// ParseProduct parses a comma-joined product spec ("I,R") against the
// domain's attribute sizes.
func ParseProduct(q string, sizes []int) (Product, error) { return workload.ParseProduct(q, sizes) }

// ParseSizes parses a comma-separated domain-size list ("2,115").
func ParseSizes(s string) ([]int, error) { return workload.ParseSizes(s) }

// NewProduct builds a weight-1 product from per-attribute predicate sets.
func NewProduct(terms ...PredicateSet) Product { return workload.NewProduct(terms...) }

// Workload is a weighted union of products over a common domain — the
// logical workload representation of Definition 3.
type Workload = workload.Workload

// NewWorkload validates and builds a workload.
func NewWorkload(dom *Domain, products ...Product) (*Workload, error) {
	return workload.New(dom, products...)
}

// Marginals workload builders (Section 6.3 / Table 5).
var (
	Marginal           = workload.Marginal
	AllMarginals       = workload.AllMarginals
	KWayMarginals      = workload.KWayMarginals
	UpToKWayMarginals  = workload.UpToKWayMarginals
	AllRangeMarginals  = workload.AllRangeMarginals
	KWayRangeMarginals = workload.KWayRangeMarginals
)

// Strategy is a selected measurement strategy.
type Strategy = core.Strategy

// ErrNotConverged is returned (wrapped) when an iterative union-strategy
// reconstruction stops on its iteration budget instead of converging. The
// pipeline never silently serves an unconverged estimate: Run, NewEngine,
// and the HTTP daemon all surface this error. Test with errors.Is.
var ErrNotConverged = core.ErrNotConverged

// SelectOptions controls strategy selection (Algorithm 2). The zero value
// uses sensible defaults (5 restarts, all operators enabled, and Workers =
// runtime.GOMAXPROCS(0) — restarts, block subproblems and large matrix
// kernels run on all cores). Selection is deterministic for a fixed Seed:
// the selected strategy is bit-identical for every Workers value, so results
// can be reproduced on any machine by pinning the seed alone.
type SelectOptions = core.HDMMOptions

// Selected is the result of strategy selection: the strategy, its expected
// total squared error ‖W·A⁺‖²_F (multiply by 2/ε² for the error at a given
// budget), and the operator that produced it.
type Selected = core.Selected

// Select runs OPT_HDMM strategy selection for the workload. It never
// touches data and consumes no privacy budget.
func Select(w *Workload, opts SelectOptions) (*Selected, error) {
	return core.Select(w, opts)
}

// SetWorkers bounds the cores used by the process-wide numeric kernels —
// dense GEMM sharding, Kronecker matrix–vector products, and LSMR's vector
// updates — and returns the previous bound. It complements
// SelectOptions.Workers, which bounds the algorithmic fan-out (restarts and
// block subproblems) per Select call; set both to 1 to pin the whole
// pipeline to a single core. n <= 0 restores the default,
// runtime.GOMAXPROCS(0). All results are bit-identical for any value.
func SetWorkers(n int) int { return kron.SetWorkers(n) }

// SetKernelBackend selects the process-wide kernel backend by name and
// returns the previous one. "reference" (the default) is the original
// scalar arithmetic — byte-identical strategies, measurements and
// snapshots on every machine since the kernels were written. "fast"
// computes the same contractions with multi-accumulator lanes (AVX2
// where available), ≥2x faster on the dot-bound kernels; its results
// are equally deterministic — run-to-run and worker-count independent
// — but differ from reference at the ULP level, so strategy-cache and
// engine keys minted under it are tagged with the backend and never
// collide with reference keys.
//
// Like the HDMM_KERNELS environment variable it mirrors, this is a
// startup knob: call it once in main, before the first Select or
// Register. Flipping it mid-process would mix two arithmetic regimes
// in one run.
func SetKernelBackend(name string) (previous string, err error) {
	b, err := mat.ParseBackend(name)
	if err != nil {
		return "", err
	}
	return mat.SetKernelBackend(b).String(), nil
}

// KernelBackend reports the active kernel backend name.
func KernelBackend() string { return mat.KernelBackend().String() }

// Options configures an end-to-end Run.
type Options struct {
	// Selection controls strategy search; zero value = defaults.
	Selection SelectOptions
	// Seed makes the private noise reproducible: a non-zero value selects a
	// deterministic noise stream. Zero (the default) is the production path:
	// the noise source is seeded from crypto/rand, so separate runs release
	// independent noise.
	Seed uint64
	// Rand overrides the noise source (optional).
	Rand *rand.Rand
	// SkipAnswers leaves Result.Answers nil (useful when the workload is
	// too large to enumerate explicitly and only Xhat is wanted).
	SkipAnswers bool
}

// Result is the outcome of an end-to-end private run.
type Result struct {
	// Xhat is the differentially private estimate of the data vector;
	// any further query evaluated on it is privacy-free post-processing.
	Xhat []float64
	// Answers holds the private workload answers W·x̂ (nil if skipped).
	Answers []float64
	// Strategy and Operator identify the selected measurement strategy.
	Strategy Strategy
	Operator string
	// ExpectedRMSE is the predicted per-query root-mean-squared error of
	// the workload answers at the requested ε.
	ExpectedRMSE float64
}

// Run executes the complete HDMM pipeline of Table 1(b): ImpVec (the
// workload is already implicit), OPT_HDMM strategy selection, Laplace
// measurement with budget eps, least-squares reconstruction, and workload
// answering. The output satisfies ε-differential privacy.
func Run(w *Workload, x []float64, eps float64, opts Options) (*Result, error) {
	// NaN compares false with everything and +Inf means zero noise, so a
	// plain `eps <= 0` check would accept both and release garbage (NaN)
	// or the exact data (Inf) under a nominally private run.
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps <= 0 {
		return nil, fmt.Errorf("hdmm: epsilon must be positive and finite, got %v", eps)
	}
	rng := opts.Rand
	if rng == nil {
		rng = mech.NoiseRNG(opts.Seed) // deterministic if Seed non-zero, crypto/rand otherwise
	}
	res, err := mech.Run(w, x, eps, rng, mech.Options{
		Selection:      opts.Selection,
		ComputeAnswers: !opts.SkipAnswers,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Xhat:         res.Xhat,
		Answers:      res.Answers,
		Strategy:     res.Strategy,
		Operator:     res.Operator,
		ExpectedRMSE: res.RootMSE,
	}, nil
}

// Engine is the answer-serving runtime: it resolves a measurement strategy
// through the strategy registry (reusing one optimized earlier for the same
// workload and selection options — in this process via the in-memory LRU,
// or in any process via the on-disk store at SelectOptions.CacheDir),
// measures the data once, and then answers unlimited batched query
// requests concurrently as privacy-free post-processing.
type Engine = serve.Engine

// EngineOptions configures NewEngine. Cache placement comes from the
// Selection field: SelectOptions.CacheDir persists optimized strategies on
// disk and SelectOptions.CacheEntries bounds the in-memory LRU.
type EngineOptions struct {
	// Selection controls strategy search on a cache miss, and its
	// CacheDir/CacheEntries fields place the strategy registry.
	Selection SelectOptions
	// Delta selects the mechanism: 0 = ε-DP Laplace, (0,1) = (ε,δ)-DP
	// Gaussian (requires ε ≤ 1).
	Delta float64
	// Seed makes the private noise reproducible: for a NON-ZERO seed,
	// answers are byte-identical to Run/RunGaussian with the same seed and
	// selection options. Zero (the default) is the production path and
	// draws fresh entropy from crypto/rand, so no two engines or runs
	// share noise.
	Seed uint64
	// Rand overrides the noise source (optional).
	Rand *rand.Rand
	// Workers bounds the goroutines answering one batch (<= 0: all cores);
	// answers are bit-identical for any value.
	Workers int
}

// NewEngine builds a serving engine for the workload at privacy budget eps:
// optimize (or load) once, measure once, answer many.
func NewEngine(w *Workload, x []float64, eps float64, opts EngineOptions) (*Engine, error) {
	return serve.NewEngine(w, x, eps, serve.Options{
		Selection: opts.Selection,
		Delta:     opts.Delta,
		Seed:      opts.Seed,
		Rand:      opts.Rand,
		Workers:   opts.Workers,
	})
}

// Server is the HTTP answer-serving daemon (hdmm serve -http): a pool of
// serving engines — one per registered tenant — behind one JSON API and one
// shared strategy registry. It implements http.Handler; see
// internal/server's package documentation for the endpoint reference.
type Server = server.Server

// ServerConfig configures the HTTP answer-serving daemon: strategy-cache
// placement (CacheDir/CacheEntries), the durable engine-snapshot store
// (SnapshotDir — crash recovery without re-measuring; see the server
// package docs), the per-engine answering fan-out (Workers), the
// request-body cap (MaxBodyBytes), and the engine-pool cap (MaxEngines).
type ServerConfig = server.Config

// NewServer builds the HTTP answer-serving daemon. Mount it on any
// http.Server or run it via `hdmm serve -http ADDR`.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Wire and programmatic types of the answer-serving daemon, re-exported so
// embedders can call Server.Register/Answer/Info directly (the CLI's
// pre-registration path does) instead of synthesizing HTTP requests.
type (
	// RegisterRequest registers one tenant: workload, data, budget.
	RegisterRequest = server.RegisterRequest
	// RegisterResponse reports the registered engine and its provenance.
	RegisterResponse = server.RegisterResponse
	// AnswerRequest is a batch of product specs for a registered engine.
	AnswerRequest = server.AnswerRequest
	// AnswerResponse carries one answer vector per requested product.
	AnswerResponse = server.AnswerResponse
	// EngineInfo is the metadata document of one registered engine.
	EngineInfo = server.EngineInfo
	// ServerMetrics is the /metrics observability document.
	ServerMetrics = server.MetricsResponse
)

// Optimize runs strategy selection for (w, opts) and persists the winner in
// the strategy registry at opts.CacheDir (opts.CacheEntries bounds the
// in-memory LRU), so later Engine constructions — in this process or any
// other sharing the cache directory — load it instead of re-optimizing. It
// returns the registry cache key, the selection, and whether the strategy
// came from the cache (true) or was optimized by this call (false).
// Selection never looks at data and consumes no privacy budget.
func Optimize(w *Workload, opts SelectOptions) (key string, sel *Selected, fromCache bool, err error) {
	reg, err := registry.Shared(opts.CacheDir, opts.CacheEntries)
	if err != nil {
		return "", nil, false, err
	}
	key = registry.Key(w, opts)
	rec, fromCache, err := reg.GetOrCompute(key, func() (*registry.Record, error) {
		return core.Select(w, opts) // registry.Record is core.Selected
	})
	if err != nil {
		return "", nil, false, err
	}
	return key, rec, fromCache, nil
}

// Fingerprint returns the canonical hex fingerprint of a workload's
// structure: invariant to product order, sensitive to domain shape, query
// structure, and weights. Two workloads with equal fingerprints are
// answered by the same cached strategies.
func Fingerprint(w *Workload) string { return registry.FingerprintHex(w) }

// StrategyKey returns the content address under which the strategy selected
// for (w, opts) is cached by the registry. Options that cannot change the
// selection (Workers, cache placement) do not affect the key.
func StrategyKey(w *Workload, opts SelectOptions) string { return registry.Key(w, opts) }

// WeightForRelativeError reweights a workload inversely with average query
// support, the Section 9 heuristic that approximately optimizes relative
// (instead of absolute) error for near-uniform data.
func WeightForRelativeError(w *Workload) *Workload {
	return workload.WeightForRelativeError(w)
}

// RunGaussian is Run under (ε,δ)-differential privacy: measurement uses the
// Gaussian mechanism calibrated to the strategy's L2 sensitivity instead of
// Laplace noise on its L1 sensitivity. Strategy selection is unchanged.
// The classic calibration is only valid for ε ≤ 1, so larger budgets are
// rejected (use Run's Laplace mechanism for high-ε deployments).
func RunGaussian(w *Workload, x []float64, eps, delta float64, opts Options) (*Result, error) {
	if math.IsNaN(eps) || math.IsNaN(delta) || eps <= 0 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("hdmm: invalid (ε,δ) = (%v, %v)", eps, delta)
	}
	if eps > 1 {
		return nil, fmt.Errorf("hdmm: Gaussian mechanism calibration requires ε ≤ 1, got %v (the σ = Δ₂·sqrt(2·ln(1.25/δ))/ε bound is unsound above 1; use the Laplace mechanism instead)", eps)
	}
	rng := opts.Rand
	if rng == nil {
		rng = mech.NoiseRNG(opts.Seed)
	}
	sel, err := core.Select(w, opts.Selection)
	if err != nil {
		return nil, err
	}
	op := sel.Strategy.Operator()
	y := mech.MeasureGaussian(op, x, eps, delta, rng)
	xhat, err := sel.Strategy.Reconstruct(y)
	if err != nil {
		return nil, err
	}
	res := &Result{Xhat: xhat, Strategy: sel.Strategy, Operator: sel.Operator}
	sigma := mech.GaussianSigma(mech.L2Sensitivity(op), eps, delta)
	// Per-query variance scales with σ² where the Laplace analysis uses
	// 2·(Δ₁/ε)²; translate the closed-form expected error accordingly.
	res.ExpectedRMSE = sigma * math.Sqrt(sel.Err/float64(w.NumQueries()))
	if !opts.SkipAnswers {
		res.Answers, err = mech.AnswerWorkload(w, xhat)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExpectedError returns the expected total squared error of answering w
// from strategy a at privacy budget eps: (2/ε²)·‖A‖₁²·‖W·A⁺‖²_F.
func ExpectedError(w *Workload, a Strategy, eps float64) (float64, error) {
	e, err := a.Error(w)
	if err != nil {
		return 0, err
	}
	return 2 * e / (eps * eps), nil
}

// Ratio computes the error ratio of Section 8.1 between a competing
// mechanism's expected total squared error and HDMM's:
// Ratio = sqrt(errOther/errHDMM). Both must be at matching ε conventions.
func Ratio(errOther, errHDMM float64) float64 {
	return math.Sqrt(errOther / errHDMM)
}

// AnswerWorkload evaluates all workload queries on a data vector (or on a
// private estimate Xhat — post-processing).
func AnswerWorkload(w *Workload, x []float64) ([]float64, error) {
	return mech.AnswerWorkload(w, x)
}
