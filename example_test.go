package hdmm_test

import (
	"fmt"

	hdmm "repro"
)

// ExampleRun shows the minimal end-to-end private query answering flow.
func ExampleRun() {
	dom := hdmm.NewDomain(
		hdmm.Attribute{Name: "sex", Size: 2},
		hdmm.Attribute{Name: "age", Size: 8},
	)
	w, _ := hdmm.NewWorkload(dom,
		hdmm.NewProduct(hdmm.Identity(2), hdmm.Prefix(8)),
	)
	records := [][]int{{0, 1}, {1, 5}, {0, 1}, {1, 7}}
	x := dom.DataVector(records)
	res, _ := hdmm.Run(w, x, 10.0, hdmm.Options{Seed: 1})
	fmt.Println(len(res.Answers), "private answers")
	// Output: 16 private answers
}

// ExampleSelect shows data-independent strategy selection and error
// analysis before spending any privacy budget.
func ExampleSelect() {
	dom := hdmm.NewDomain(hdmm.Attribute{Name: "v", Size: 64})
	w, _ := hdmm.NewWorkload(dom, hdmm.NewProduct(hdmm.AllRange(64)))
	sel, _ := hdmm.Select(w, hdmm.SelectOptions{Restarts: 2, Seed: 3})
	identityErr := w.GramTrace()
	fmt.Println("HDMM beats Identity:", sel.Err < identityErr)
	// Output: HDMM beats Identity: true
}

// ExampleNewWorkload builds the logical union-of-products form of
// Definition 3: a GROUP BY query and a national total.
func ExampleNewWorkload() {
	dom := hdmm.NewDomain(
		hdmm.Attribute{Name: "state", Size: 51},
		hdmm.Attribute{Name: "age", Size: 115},
	)
	w, _ := hdmm.NewWorkload(dom,
		// SELECT state, COUNT(*) GROUP BY state → Identity × Total.
		hdmm.NewProduct(hdmm.Identity(51), hdmm.Total(115)),
		// Age CDF at the national level → Total × Prefix.
		hdmm.NewProduct(hdmm.Total(51), hdmm.Prefix(115)),
	)
	fmt.Println(w.NumQueries(), "queries;", w.ImplicitSize(), "implicit values")
	// Output: 166 queries; 15992 implicit values
}
