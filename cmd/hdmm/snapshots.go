package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/snapshot"
)

// cmdSnapshots inspects a durable engine-snapshot directory without
// mutating it — safe to run against a live daemon's store. Each snapshot
// prints one line: key, domain, budget, query count, measurement length.
// With -verify, the exit status reports whether every file verified
// (decode + name/key match); bad files print their reason to stderr.
func cmdSnapshots(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("snapshots", flag.ContinueOnError)
	dir := fs.String("dir", "", "snapshot directory to inspect (required)")
	verify := fs.Bool("verify", false, "exit non-zero if any snapshot fails verification")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if *dir == "" {
		return usageError("snapshots requires -dir DIR")
	}
	if fs.NArg() != 0 {
		return usageError("snapshots takes no positional arguments")
	}
	entries, err := snapshot.List(*dir)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(stdout)
	bad := 0
	for _, e := range entries {
		if e.Err != nil {
			bad++
			fmt.Fprintf(stderr, "hdmm: %s: %v\n", e.File, e.Err)
			continue
		}
		sn := e.Snapshot
		sizes := make([]string, len(sn.Domain))
		for i, n := range sn.Domain {
			sizes[i] = fmt.Sprintf("%d", n)
		}
		budget := fmt.Sprintf("eps=%g", sn.Eps)
		if sn.Delta > 0 {
			budget = fmt.Sprintf("eps=%g delta=%g", sn.Eps, sn.Delta)
		}
		fmt.Fprintf(out, "%s  domain=[%s]  %s  queries=%d  measurements=%d  %d bytes\n",
			sn.Key, strings.Join(sizes, ","), budget, len(sn.Queries), len(sn.Y), e.Size)
	}
	fmt.Fprintf(out, "%d snapshot(s), %d failed verification\n", len(entries), bad)
	if err := out.Flush(); err != nil {
		return err
	}
	if *verify && bad > 0 {
		return fmt.Errorf("%d snapshot(s) failed verification", bad)
	}
	return nil
}
