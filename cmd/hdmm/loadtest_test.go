package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startLoadtestDaemon boots the HTTP daemon on a loopback port and returns
// its base URL plus a shutdown func.
func startLoadtestDaemon(t *testing.T, cfg daemonConfig) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out, errb bytes.Buffer
	go func() {
		errc <- serveDaemon(ctx, "127.0.0.1:0", cfg, &out, &errb, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v\n%s", err, errb.String())
	}
	return "http://" + addr, func() {
		cancel()
		if err := <-errc; err != nil {
			t.Errorf("daemon exited with: %v\n%s", err, errb.String())
		}
	}
}

// TestLoadtestEndToEnd: `hdmm loadtest` against a live daemon completes
// with zero errors and emits one BENCH-shaped JSON row with non-zero
// percentiles derived from real request latencies.
func TestLoadtestEndToEnd(t *testing.T) {
	base, stop := startLoadtestDaemon(t, daemonConfig{cache: t.TempDir(), drain: 2 * time.Second})
	defer stop()

	var out, errb bytes.Buffer
	err := cmdLoadtest([]string{
		"-addr", base,
		"-rate", "200",
		"-duration", "500ms",
		"-seed", "7",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("loadtest: %v\n%s", err, errb.String())
	}

	var rows []loadtestRow
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("loadtest stdout is not a JSON row array: %v\n%s", err, out.String())
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Op != "serve/loadtest/answer" {
		t.Errorf("op = %q", r.Op)
	}
	if r.Errors != 0 {
		t.Errorf("errors = %d, want 0", r.Errors)
	}
	if r.Iters <= 0 || r.Offered < r.Iters {
		t.Errorf("iters = %d, offered = %d", r.Iters, r.Offered)
	}
	if r.P50Ns <= 0 || r.P99Ns <= 0 {
		t.Errorf("percentiles p50=%v p99=%v, want non-zero", r.P50Ns, r.P99Ns)
	}
	if r.P99Ns < r.P50Ns {
		t.Errorf("p99 %v < p50 %v", r.P99Ns, r.P50Ns)
	}
	if r.NsPerOp <= 0 || r.MBPerS <= 0 {
		t.Errorf("ns_per_op=%v mb_per_s=%v, want positive", r.NsPerOp, r.MBPerS)
	}
	if !strings.Contains(errb.String(), "loadtest: tenant ") {
		t.Errorf("missing tenant line in stderr:\n%s", errb.String())
	}

	// The daemon's own histograms saw the same traffic: its answer p99 is
	// non-zero too (the loadtest and /metrics share bucket layout).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `hdmm_request_duration_seconds_count{endpoint="answer"}`) {
		t.Error("daemon metrics missing the answer latency histogram after the run")
	}
}

// TestLoadtestRegisterOpAndSaturate: op=register drives idempotent
// re-registrations (no new measurements), and the saturation search emits
// one row per round with ascending target rates.
func TestLoadtestRegisterOpAndSaturate(t *testing.T) {
	base, stop := startLoadtestDaemon(t, daemonConfig{cache: t.TempDir(), drain: 2 * time.Second})
	defer stop()

	var out, errb bytes.Buffer
	err := cmdLoadtest([]string{
		"-addr", base,
		"-op", "register",
		"-rate", "50",
		"-duration", "300ms",
		"-seed", "7",
		"-saturate",
		"-p99-bound", "1ns", // saturates on the first round, keeping the test fast
	}, &out, &errb)
	if err != nil {
		t.Fatalf("loadtest: %v\n%s", err, errb.String())
	}
	var rows []loadtestRow
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("stdout: %v\n%s", err, out.String())
	}
	if len(rows) != 1 {
		t.Fatalf("p99 bound of 1ns should saturate in one round, got %d rows", len(rows))
	}
	if rows[0].Op != "serve/loadtest/register" {
		t.Errorf("op = %q", rows[0].Op)
	}
	if rows[0].Errors != 0 {
		t.Errorf("idempotent re-registrations errored %d times:\n%s", rows[0].Errors, errb.String())
	}
	if !strings.Contains(errb.String(), "saturated at") {
		t.Errorf("missing saturation line in stderr:\n%s", errb.String())
	}
}

// TestServeDaemonPprof: -pprof-addr serves net/http/pprof on its own
// listener, separate from the API address.
func TestServeDaemonPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out, errb bytes.Buffer
	cfg := daemonConfig{cache: t.TempDir(), drain: 2 * time.Second, pprofAddr: "127.0.0.1:0"}
	go func() {
		errc <- serveDaemon(ctx, "127.0.0.1:0", cfg, &out, &errb, func(addr string) { ready <- addr })
	}()
	var apiAddr string
	select {
	case apiAddr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v\n%s", err, errb.String())
	}
	defer func() {
		cancel()
		<-errc
	}()

	// The bound pprof address is announced on stderr before onReady.
	var pprofURL string
	for _, line := range strings.Split(errb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "hdmm: pprof on "); ok {
			pprofURL = rest
		}
	}
	if pprofURL == "" {
		t.Fatalf("no pprof announcement in stderr:\n%s", errb.String())
	}
	resp, err := http.Get(pprofURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d, body %.80s", resp.StatusCode, body)
	}

	// And the API listener does NOT expose pprof.
	resp, err = http.Get("http://" + apiAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("API listener serves /debug/pprof/ — profiling leaked onto the public address")
	}
}

// TestLoadtestUsageErrors: bad invocations fail as usage errors before any
// network traffic.
func TestLoadtestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no addr":             {"-rate", "10"},
		"bad op":              {"-addr", "http://x", "-op", "delete"},
		"saturate sans bound": {"-addr", "http://x", "-saturate"},
		"positional args":     {"-addr", "http://x", "extra.csv"},
	} {
		var out, errb bytes.Buffer
		err := cmdLoadtest(args, &out, &errb)
		if _, ok := err.(usageError); !ok {
			t.Errorf("%s: err = %v, want usageError", name, err)
		}
	}
}
