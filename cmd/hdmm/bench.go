package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	hdmm "repro"
	"repro/internal/core"
	"repro/internal/fsx"
	"repro/internal/kron"
	"repro/internal/mat"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// benchResult is one row of the perf-trajectory artifact (BENCH_10.json):
// one operation at one worker count under one kernel backend. Kernels and
// GOARCH identify what actually ran — MB/s from a fast-backend row on one
// architecture is not comparable to a reference row, and older artifacts
// (BENCH_5/BENCH_7) predate the fields, so they unmarshal as "".
type benchResult struct {
	Op          string  `json:"op"`
	Kernels     string  `json:"kernels,omitempty"`
	GOARCH      string  `json:"goarch,omitempty"`
	Workers     int     `json:"workers"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s"` // data volume moved per second
}

// benchCase is one operation of the harness. bytes is the data volume one
// op reads+writes (for MB/s); setup runs untimed, fn is the measured op.
type benchCase struct {
	op    string
	bytes int64
	fn    func()
}

// measure times fn with a calibrating loop: it grows the iteration count
// until the batch takes at least targetMS, then reports per-op time and
// allocations from the final batch.
func measure(c benchCase, targetMS int) benchResult {
	target := time.Duration(targetMS) * time.Millisecond
	iters := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= target || iters >= 1<<20 {
			ns := float64(elapsed.Nanoseconds()) / float64(iters)
			allocs := float64(after.Mallocs-before.Mallocs) / float64(iters)
			mbps := 0.0
			if ns > 0 {
				mbps = float64(c.bytes) / ns * 1e9 / 1e6
			}
			return benchResult{Op: c.op, Iters: iters, NsPerOp: ns, AllocsPerOp: allocs, MBPerS: mbps}
		}
		// Aim past the target with headroom, growing at most 64× per round.
		grow := int64(float64(iters) * float64(target) / float64(elapsed+1) * 1.2)
		if max := int64(iters) * 64; grow > max {
			grow = max
		}
		if grow <= int64(iters) {
			grow = int64(iters) + 1
		}
		iters = int(grow)
	}
}

func benchRand(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xbe7c)) }

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func randSlice(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// benchCases builds the harness: the Kronecker kernels on a 3-factor
// 68×64 product (the shape of the existing kernel microbenchmarks), the
// two reconstruction paths, and the batched serving path. workers bounds
// the serving engine's batch fan-out (the kernels read the process-wide
// bound the caller has already set).
func benchCases(workers int) ([]benchCase, error) {
	rng := benchRand(101)
	var cases []benchCase

	// --- Kronecker kernels: 3 factors of 68×64, domain 64³ = 262144. ---
	fs := make([]*mat.Dense, 3)
	for i := range fs {
		fs[i] = randDense(rng, 68, 64)
	}
	p := kron.NewProduct(fs...)
	rows, cols := p.Dims()
	x := randSlice(rng, cols)
	y := randSlice(rng, rows)
	dst := make([]float64, rows)
	dstT := make([]float64, cols)
	ws := kron.NewWorkspace()
	p.MatVecTo(dst, x, ws) // warm workspace + transpose caches
	p.MatTVecTo(dstT, y, ws)
	cases = append(cases,
		benchCase{"kron/matvec", int64(8 * (cols + rows)), func() { p.MatVecTo(dst, x, ws) }},
		benchCase{"kron/mattvec", int64(8 * (rows + cols)), func() { p.MatTVecTo(dstT, y, ws) }},
	)

	const k = 16
	xs := randSlice(rng, k*cols)
	batch := make([]float64, k*rows)
	p.MatMulTo(batch, xs, k, ws)
	cases = append(cases,
		benchCase{fmt.Sprintf("kron/matmul%d", k), int64(8 * k * (cols + rows)), func() { p.MatMulTo(batch, xs, k, ws) }},
	)

	// --- Reconstruction: OPT⊗ pseudo-inverse path and OPT⁺ LSMR path. ---
	wk, err := workload.New(schema.Sizes(64, 64),
		workload.NewProduct(workload.AllRange(64), workload.AllRange(64)))
	if err != nil {
		return nil, err
	}
	ks, _, err := core.OPTKron(wk, core.OPTKronOptions{Seed: 3, MaxIter: 15, Restarts: 1})
	if err != nil {
		return nil, err
	}
	krows, kcols := ks.Operator().Dims()
	ky := randSlice(rng, krows)
	if _, err := ks.Reconstruct(ky); err != nil { // warm pinv cache
		return nil, err
	}
	cases = append(cases, benchCase{"reconstruct/kron", int64(8 * (krows + kcols)), func() {
		if _, err := ks.Reconstruct(ky); err != nil {
			panic(err)
		}
	}})

	wu, err := workload.New(schema.Sizes(32, 32),
		workload.NewProduct(workload.AllRange(32), workload.Total(32)),
		workload.NewProduct(workload.Total(32), workload.AllRange(32)))
	if err != nil {
		return nil, err
	}
	us, _, err := core.OPTPlus(wu, core.OPTPlusOptions{Kron: core.OPTKronOptions{Seed: 5, MaxIter: 15, Restarts: 1}})
	if err != nil {
		return nil, err
	}
	urows, ucols := us.Operator().Dims()
	uy := randSlice(rng, urows)
	uws := kron.NewWorkspace()
	if _, err := us.ReconstructWS(uy, uws); err != nil {
		return nil, err
	}
	cases = append(cases, benchCase{"reconstruct/union", int64(8 * (urows + ucols)), func() {
		if _, err := us.ReconstructWS(uy, uws); err != nil {
			panic(err)
		}
	}})

	// Batched union reconstruction: 16 measurement vectors through one
	// multi-RHS LSMR solve (wide GEMMs instead of 16 sequential matvec
	// chains).
	const uk = 16
	uys := make([][]float64, uk)
	for i := range uys {
		uys[i] = randSlice(rng, urows)
	}
	if _, err := us.ReconstructBatch(uys); err != nil {
		return nil, err
	}
	cases = append(cases, benchCase{fmt.Sprintf("reconstruct/union-batch%d", uk), int64(8 * uk * (urows + ucols)), func() {
		if _, err := us.ReconstructBatch(uys); err != nil {
			panic(err)
		}
	}})

	// Warm-started union reconstruction: the serving regime, where
	// successive measurements are close and each solve seeds from the last
	// solution. The reconstructor is warmed once untimed; every measured
	// solve then runs warm.
	urec := us.NewReconstructor()
	if _, err := urec.Reconstruct(uy); err != nil {
		return nil, err
	}
	cases = append(cases, benchCase{"reconstruct/union-warm", int64(8 * (urows + ucols)), func() {
		if _, err := urec.Reconstruct(uy); err != nil {
			panic(err)
		}
	}})

	// --- Serving: a 512-query batch drawn from 4 shared specs. ---
	dom := hdmm.NewDomain(hdmm.Attribute{Name: "a", Size: 2}, hdmm.Attribute{Name: "b", Size: 64})
	we, err := hdmm.NewWorkload(dom, hdmm.NewProduct(hdmm.Identity(2), hdmm.AllRange(64)))
	if err != nil {
		return nil, err
	}
	data := make([]float64, dom.Size())
	for i := range data {
		data[i] = float64((i * 7) % 23)
	}
	eng, err := serve.NewEngine(we, data, 1.0, serve.Options{
		Selection: hdmm.SelectOptions{Restarts: 1, Seed: 11},
		Seed:      17,
		Workers:   workers,
	})
	if err != nil {
		return nil, err
	}
	sizes := dom.AttrSizes()
	specs := make([]string, 512)
	for i := range specs {
		specs[i] = []string{"I,R", "T,P", "I,P", "T,R"}[i%4]
	}
	products, err := workload.ParseProducts(specs, sizes)
	if err != nil {
		return nil, err
	}
	answered, err := eng.AnswerShared(products) // warm matrices + validate
	if err != nil {
		return nil, err
	}
	var ansVals int64
	for _, a := range answered {
		ansVals += int64(len(a))
	}
	cases = append(cases, benchCase{"serve/answer512", 8 * (int64(len(data)) + ansVals), func() {
		if _, err := eng.AnswerShared(products); err != nil {
			panic(err)
		}
	}})

	// --- Durability: full snapshot codec round-trip of the serving engine
	// above (encode + decode, no disk) — the fixed cost a registration pays
	// to become crash-safe and a boot pays per recovered engine.
	sn := eng.Snapshot("bench-engine", []string{"I,R"})
	blob, err := snapshot.Encode(sn)
	if err != nil {
		return nil, err
	}
	cases = append(cases, benchCase{"snapshot/roundtrip", 2 * int64(len(blob)), func() {
		b, err := snapshot.Encode(sn)
		if err != nil {
			panic(err)
		}
		if _, err := snapshot.Decode(b); err != nil {
			panic(err)
		}
	}})

	return cases, nil
}

// parseWorkerSet parses the -workers flag: a comma-separated list of worker
// counts, deduplicated in order. "" selects the default sweep {1, 2, 4,
// GOMAXPROCS} (deduplicated, counts above GOMAXPROCS dropped) — enough
// points to see whether an op scales, flatlines, or inverts.
func parseWorkerSet(spec string) ([]int, error) {
	if spec == "" {
		var set []int
		seen := map[int]bool{}
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			if w > runtime.GOMAXPROCS(0) || seen[w] {
				continue
			}
			seen[w] = true
			set = append(set, w)
		}
		return set, nil
	}
	var set []int
	seen := map[int]bool{}
	for _, part := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers value %q (want positive integers, e.g. 1,4,8)", part)
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		set = append(set, w)
	}
	return set, nil
}

// parseKernelSet parses the -kernels flag: a comma-separated list of
// kernel backend names, deduplicated in order. "" selects only the
// backend already active in this process (HDMM_KERNELS or the default),
// so existing invocations keep their single-backend behavior.
func parseKernelSet(spec string) ([]string, error) {
	if spec == "" {
		return []string{hdmm.KernelBackend()}, nil
	}
	var set []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		b, err := mat.ParseBackend(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -kernels value %q (want e.g. reference,fast)", part)
		}
		if seen[b.String()] {
			continue
		}
		seen[b.String()] = true
		set = append(set, b.String())
	}
	return set, nil
}

// cmdBench runs the kernel/reconstruct/serve/snapshot benchmark harness
// across a sweep of worker counts and kernel backends and writes the
// results as JSON, seeding the perf trajectory future PRs diff against.
func cmdBench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_10.json", "output path for the JSON results")
	targetMS := fs.Int("benchtime", 250, "minimum milliseconds of measurement per op")
	workersSpec := fs.String("workers", "", "comma-separated worker counts to sweep (default 1,2,4 and GOMAXPROCS, deduplicated)")
	kernelsSpec := fs.String("kernels", "", "comma-separated kernel backends to sweep, e.g. reference,fast (default: the active backend only)")
	baseline := fs.String("baseline", "", "baseline JSON results to compare against (from an earlier -out)")
	assertImproves := fs.String("assert-improves", "", "comma-separated [KERNELS:]OP entries; fail unless each op's best MB/s beats the -baseline file's (regression gate for CI)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: hdmm bench [-out FILE] [-benchtime MS] [-workers 1,4,8] [-kernels reference,fast] [-baseline FILE -assert-improves [KERNELS:]OP,...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return usageError(err.Error())
	}
	if fs.NArg() != 0 {
		return usageError("bench takes no positional arguments")
	}
	if (*assertImproves == "") != (*baseline == "") {
		return usageError("-baseline and -assert-improves go together")
	}

	workerSet, err := parseWorkerSet(*workersSpec)
	if err != nil {
		return usageError(err.Error())
	}
	kernelSet, err := parseKernelSet(*kernelsSpec)
	if err != nil {
		return usageError(err.Error())
	}

	var results []benchResult
	for _, backend := range kernelSet {
		prevBackend, err := hdmm.SetKernelBackend(backend)
		if err != nil {
			return err
		}
		for _, workers := range workerSet {
			prev := hdmm.SetWorkers(workers)
			cases, err := benchCases(workers)
			if err != nil {
				hdmm.SetWorkers(prev)
				hdmm.SetKernelBackend(prevBackend)
				return err
			}
			for _, c := range cases {
				r := measure(c, *targetMS)
				r.Workers = workers
				r.Kernels = backend
				r.GOARCH = runtime.GOARCH
				results = append(results, r)
				// Progress goes to stderr so `-out -` leaves stdout pure JSON.
				fmt.Fprintf(stderr, "%-22s kernels=%-9s workers=%-2d %12.0f ns/op %10.1f allocs/op %10.1f MB/s\n",
					c.op, backend, workers, r.NsPerOp, r.AllocsPerOp, r.MBPerS)
			}
			hdmm.SetWorkers(prev)
		}
		if _, err := hdmm.SetKernelBackend(prevBackend); err != nil {
			return err
		}
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := stdout.Write(blob); err != nil {
			return err
		}
	} else {
		// The file doubles as the -assert-improves baseline for later CI
		// runs; an interrupted bench must not leave a torn JSON the gate
		// would then trip over.
		if err := fsx.WriteAtomic(fsx.OS{}, *out, blob); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d results)\n", *out, len(results))
	}
	if *assertImproves != "" {
		return assertOpImproves(*baseline, *assertImproves, results, stdout)
	}
	return nil
}

// bestMBPerS returns the best throughput recorded for op across worker
// counts, and whether the op appears at all. A non-empty kernels filter
// keeps only rows from that backend; "" matches every row (including
// rows from pre-backend artifacts, which carry no kernels field).
func bestMBPerS(results []benchResult, op, kernels string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range results {
		if r.Op != op || (kernels != "" && r.Kernels != kernels) {
			continue
		}
		found = true
		if r.MBPerS > best {
			best = r.MBPerS
		}
	}
	return best, found
}

// assertOpImproves is the CI regression gate: for each comma-separated
// [KERNELS:]OP entry, the current run's best MB/s must strictly beat the
// baseline file's best for the same op. Comparing best-across-workers on
// both sides keeps the gate insensitive to which worker counts each run
// swept. A KERNELS prefix (e.g. "fast:kron/matvec") restricts the
// *current* side to rows from that backend; the baseline side is always
// unfiltered, so gating fast rows against a pre-backend artifact (whose
// rows carry no kernels field) asserts the new backend beats the old
// single-backend numbers.
func assertOpImproves(baselinePath, spec string, results []benchResult, stdout io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w", err)
	}
	var base []benchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		kernels, op := "", entry
		if i := strings.IndexByte(entry, ':'); i >= 0 {
			kernels, op = entry[:i], entry[i+1:]
			if _, err := mat.ParseBackend(kernels); err != nil {
				return fmt.Errorf("bench: bad -assert-improves entry %q: %v", entry, err)
			}
		}
		was, ok := bestMBPerS(base, op, "")
		if !ok {
			return fmt.Errorf("bench: baseline %s has no %q rows", baselinePath, op)
		}
		now, ok := bestMBPerS(results, op, kernels)
		if !ok {
			return fmt.Errorf("bench: this run produced no %q rows", entry)
		}
		if now <= was {
			return fmt.Errorf("bench: %s regressed: %.2f MB/s vs baseline %.2f MB/s", entry, now, was)
		}
		fmt.Fprintf(stdout, "%s improved: %.2f MB/s vs baseline %.2f MB/s (%.1fx)\n", entry, now, was, now/was)
	}
	return nil
}
