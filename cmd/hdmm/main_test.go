package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hdmm "repro"
	"repro/internal/core"
)

// writeTestData writes a small (sex, age∈[0,16)) CSV dataset.
func writeTestData(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i%2, (i*7)%16)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// expectedServeOutput runs the same pipeline in-process through the public
// API and formats the answers exactly as the CLI does.
func expectedServeOutput(t *testing.T, seed uint64) string {
	t.Helper()
	dom := hdmm.NewDomain(hdmm.Attribute{Name: "A0", Size: 2}, hdmm.Attribute{Name: "A1", Size: 16})
	w, err := hdmm.NewWorkload(dom,
		hdmm.NewProduct(hdmm.Identity(2), hdmm.AllRange(16)),
		hdmm.NewProduct(hdmm.Total(2), hdmm.Prefix(16)),
	)
	if err != nil {
		t.Fatal(err)
	}
	var records [][]int
	for i := 0; i < 40; i++ {
		records = append(records, []int{i % 2, (i * 7) % 16})
	}
	x := dom.DataVector(records)
	res, err := hdmm.Run(w, x, 1.0, hdmm.Options{
		Seed:      seed,
		Selection: hdmm.SelectOptions{Restarts: 2, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, a := range res.Answers {
		fmt.Fprintf(&out, "%.3f\n", a)
	}
	return out.String()
}

// TestOptimizeThenServe is the acceptance test of the optimize→cache→serve
// lifecycle: a strategy optimized by `hdmm optimize` is loaded — not
// re-optimized — by a later `hdmm serve` over the same cache directory
// (zero optimizer restarts during serve), and the served answers are
// byte-identical to a direct in-process mechanism run with the same seed.
func TestOptimizeThenServe(t *testing.T) {
	data := writeTestData(t)
	cache := t.TempDir()
	workloadArgs := []string{"-domain", "2,16", "-query", "I,R", "-query", "T,P"}

	var optOut, optErr bytes.Buffer
	optArgs := append([]string{"-cache", cache, "-restarts", "2", "-optseed", "9"}, workloadArgs...)
	if err := cmdOptimize(optArgs, &optOut, &optErr); err != nil {
		t.Fatalf("optimize: %v\n%s", err, optErr.String())
	}
	key := strings.TrimSpace(optOut.String())
	if key == "" {
		t.Fatal("optimize printed no key")
	}
	if _, err := os.Stat(filepath.Join(cache, key+".strat")); err != nil {
		t.Fatalf("optimize did not persist the strategy: %v", err)
	}

	serveArgs := append([]string{"-cache", cache, "-restarts", "2", "-optseed", "9", "-eps", "1", "-seed", "123"}, workloadArgs...)
	serveArgs = append(serveArgs, data)
	var srvOut, srvErr bytes.Buffer
	before := core.RestartsPerformed()
	if err := cmdServe(serveArgs, &srvOut, &srvErr); err != nil {
		t.Fatalf("serve: %v\n%s", err, srvErr.String())
	}
	if d := core.RestartsPerformed() - before; d != 0 {
		t.Fatalf("serve performed %d optimizer restarts, want 0 (strategy was cached)", d)
	}
	if !strings.Contains(srvErr.String(), "(cache)") {
		t.Fatalf("serve did not report a cache hit: %s", srvErr.String())
	}
	if got, want := srvOut.String(), expectedServeOutput(t, 123); got != want {
		t.Fatalf("served answers differ from direct in-process run\n got: %q\nwant: %q",
			firstLines(got, 3), firstLines(want, 3))
	}
}

// TestServeQueryFile: -queries answers ad-hoc products from a file against
// the cached measurement instead of the workload itself.
func TestServeQueryFile(t *testing.T) {
	data := writeTestData(t)
	qf := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(qf, []byte("# total count per sex\nI,T\nT,I\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-domain", "2,16", "-query", "I,R", "-restarts", "1", "-seed", "5", "-queries", qf, data}
	var out, errb bytes.Buffer
	if err := cmdServe(args, &out, &errb); err != nil {
		t.Fatalf("serve -queries: %v\n%s", err, errb.String())
	}
	// I,T has 2 answers, T,I has 16: one line each.
	if got := strings.Count(out.String(), "\n"); got != 18 {
		t.Fatalf("serve -queries printed %d answers, want 18", got)
	}
}

// TestLegacyRun: the original flag-only invocation still works.
func TestLegacyRun(t *testing.T) {
	data := writeTestData(t)
	args := []string{"-domain", "2,16", "-query", "I,R", "-query", "T,P", "-restarts", "2", "-seed", "123", data}
	var out, errb bytes.Buffer
	if err := cmdRun(args, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "strategy:") {
		t.Fatalf("missing strategy diagnostics: %s", errb.String())
	}
	want := expectedServeOutput(t, 123)
	// The legacy mode uses selection seed 0, not 9, so only check shape.
	if strings.Count(out.String(), "\n") != strings.Count(want, "\n") {
		t.Fatalf("legacy run printed %d answers, want %d",
			strings.Count(out.String(), "\n"), strings.Count(want, "\n"))
	}
}

// TestUsageErrors: malformed invocations fail with usage errors.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := cmdOptimize([]string{"-domain", "2,16", "-query", "I,R"}, &out, &errb); err == nil {
		t.Error("optimize without -cache accepted")
	}
	if err := cmdServe([]string{"-domain", "2,16", "-query", "I,R"}, &out, &errb); err == nil {
		t.Error("serve without data file accepted")
	}
	if err := cmdServe([]string{"-domain", "2,16", "-query", "I,R", "-snapshot-dir", "snaps", "nodata.csv"}, &out, &errb); err == nil {
		t.Error("one-shot serve with -snapshot-dir accepted (snapshots belong to the daemon)")
	}
	if err := cmdRun([]string{"-domain", "2,16", "nodata.csv"}, &out, &errb); err == nil {
		t.Error("run without -query accepted")
	}
}

// TestServeHTTPDaemon boots the daemon on a loopback port with a
// pre-registered workload, exercises the HTTP surface, then cancels the
// context (the SIGINT/SIGTERM path) and checks the shutdown is clean.
func TestServeHTTPDaemon(t *testing.T) {
	data := writeTestData(t)
	cfg := daemonConfig{
		cache:    t.TempDir(),
		eps:      1.0,
		seed:     123,
		restarts: 2,
		optseed:  9,
		drain:    2 * time.Second, // zero grace can race the last conn going idle and print the "draining" variant
		domain:   "2,16",
		queries:  []string{"I,R", "T,P"},
		dataPath: data,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out, errb bytes.Buffer
	go func() {
		errc <- serveDaemon(ctx, "127.0.0.1:0", cfg, &out, &errb, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v\n%s", err, errb.String())
	}

	// All startup writes happen before onReady, so reading stdout is safe.
	key := strings.TrimSpace(out.String())
	if key == "" {
		t.Fatal("daemon printed no pre-registered engine key")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/v1/engines/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("engine metadata: status %d", resp.StatusCode)
	}

	resp, err = http.Post("http://"+addr+"/v1/engines/"+key+"/answer", "application/json",
		strings.NewReader(`{"queries":["I,T","T,I"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer: status %d: %s", resp.StatusCode, body)
	}
	var ans struct {
		Answers [][]float64 `json:"answers"`
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if len(ans.Answers) != 2 || len(ans.Answers[0]) != 2 || len(ans.Answers[1]) != 16 {
		t.Fatalf("answer shape wrong: %d vectors", len(ans.Answers))
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("daemon did not shut down cleanly: %v", err)
	}
	if !strings.Contains(errb.String(), "shut down cleanly") {
		t.Fatalf("missing shutdown diagnostic: %s", errb.String())
	}
}

// TestServeHTTPDaemonRecovery is the CLI-level kill-and-restart check: a
// daemon with -snapshot-dir is stopped after answering, a second daemon
// boots over the same snapshot directory with a FRESH strategy cache, and
// the pre-registration resolves to the same engine key with byte-identical
// answers — the snapshots alone carried the engine across the restart.
func TestServeHTTPDaemonRecovery(t *testing.T) {
	data := writeTestData(t)
	snapDir := filepath.Join(t.TempDir(), "snaps")
	baseCfg := daemonConfig{
		snapDir:  snapDir,
		eps:      1.0,
		seed:     123,
		restarts: 2,
		optseed:  9,
		drain:    2 * time.Second,
		domain:   "2,16",
		queries:  []string{"I,R", "T,P"},
		dataPath: data,
	}
	const answerBody = `{"queries":["I,T","T,I"]}`

	boot := func(label string) (key string, answer []byte) {
		t.Helper()
		cfg := baseCfg
		cfg.cache = t.TempDir() // fresh registry every boot: only the snapshots persist
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ready := make(chan string, 1)
		errc := make(chan error, 1)
		var out, errb bytes.Buffer
		go func() {
			errc <- serveDaemon(ctx, "127.0.0.1:0", cfg, &out, &errb, func(addr string) { ready <- addr })
		}()
		var addr string
		select {
		case addr = <-ready:
		case err := <-errc:
			t.Fatalf("%s: daemon exited before ready: %v\n%s", label, err, errb.String())
		}
		key = strings.TrimSpace(out.String())
		resp, err := http.Post("http://"+addr+"/v1/engines/"+key+"/answer", "application/json",
			strings.NewReader(answerBody))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		answer, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: answer status %d: %s", label, resp.StatusCode, answer)
		}
		cancel()
		if err := <-errc; err != nil {
			t.Fatalf("%s: shutdown: %v", label, err)
		}
		return key, answer
	}

	key1, answer1 := boot("first boot")
	key2, answer2 := boot("restart")
	if key2 != key1 {
		t.Fatalf("restarted daemon derived a different engine key:\n%s\n%s", key1, key2)
	}
	if !bytes.Equal(answer1, answer2) {
		t.Fatalf("answers diverged across restart:\n%s\nvs\n%s", answer1, answer2)
	}

	// The snapshots subcommand sees the one durable engine and verifies it.
	var out, errb bytes.Buffer
	if err := cmdSnapshots([]string{"-dir", snapDir, "-verify"}, &out, &errb); err != nil {
		t.Fatalf("snapshots -verify: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), key1) || !strings.Contains(out.String(), "1 snapshot(s), 0 failed") {
		t.Fatalf("snapshots listing:\n%s", out.String())
	}
}

// TestCmdSnapshotsUsage: bad invocations and corrupt stores fail loudly.
func TestCmdSnapshotsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if err := cmdSnapshots([]string{}, &out, &errb); err == nil {
		t.Error("snapshots without -dir accepted")
	}
	if err := cmdSnapshots([]string{"-dir", t.TempDir(), "extra"}, &out, &errb); err == nil {
		t.Error("snapshots with positional args accepted")
	}
	// A corrupt snapshot lists its reason and fails only under -verify.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if err := cmdSnapshots([]string{"-dir", dir}, &out, &errb); err != nil {
		t.Fatalf("snapshots over a corrupt store without -verify: %v", err)
	}
	if !strings.Contains(out.String(), "1 failed") {
		t.Fatalf("listing did not count the corrupt file:\n%s", out.String())
	}
	if err := cmdSnapshots([]string{"-dir", dir, "-verify"}, &out, &errb); err == nil {
		t.Error("snapshots -verify over a corrupt store succeeded")
	}
}

// TestServeHTTPUsageErrors: invalid -http invocations fail before binding.
func TestServeHTTPUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := cmdServe([]string{"-http", ":0", "a.csv", "b.csv"}, &out, &errb); err == nil {
		t.Error("serve -http with two data files accepted")
	}
	if err := cmdServe([]string{"-http", ":0", "-domain", "2,16", "a.csv"}, &out, &errb); err == nil {
		t.Error("serve -http pre-registration without -query accepted")
	}
	if err := cmdServe([]string{"-http", ":0", "-domain", "2,16", "-query", "I,R"}, &out, &errb); err == nil {
		t.Error("serve -http with workload flags but no data file accepted")
	}
	if err := cmdServe([]string{"-http", ":0", "-queries", "q.txt"}, &out, &errb); err == nil {
		t.Error("serve -http with -queries accepted")
	}
	// Budget/seed flags without a pre-registered workload have nothing to
	// apply to and must be rejected, not silently ignored.
	if err := cmdServe([]string{"-http", ":0", "-eps", "0.5"}, &out, &errb); err == nil {
		t.Error("serve -http with stray -eps accepted")
	}
	if err := cmdServe([]string{"-http", ":0", "-seed", "7", "-restarts", "3"}, &out, &errb); err == nil {
		t.Error("serve -http with stray -seed/-restarts accepted")
	}
	if err := cmdServe([]string{"-http", ":0", "-drain", "-1s"}, &out, &errb); err == nil {
		t.Error("serve -http with negative -drain accepted")
	}
}

// TestServeHTTPBusyPortFailsFast: a bind failure must surface before any
// pre-registration work (optimization + the one private measurement), not
// after it.
func TestServeHTTPBusyPortFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	data := writeTestData(t)
	cfg := daemonConfig{
		cache: t.TempDir(), eps: 1, restarts: 2, optseed: 9,
		domain: "2,16", queries: []string{"I,R"}, dataPath: data,
	}
	before := core.RestartsPerformed()
	var out, errb bytes.Buffer
	if err := serveDaemon(context.Background(), ln.Addr().String(), cfg, &out, &errb, nil); err == nil {
		t.Fatal("daemon bound a busy port")
	}
	if d := core.RestartsPerformed() - before; d != 0 {
		t.Fatalf("bind failure after %d optimizer restarts, want 0 (fail before pre-registration)", d)
	}
	if out.Len() != 0 {
		t.Fatalf("bind failure printed an engine key: %q", out.String())
	}
}

// TestServeHTTPDrainZero: an explicit -drain 0 is honored — shutdown
// without waiting — rather than silently coerced to the default grace.
func TestServeHTTPDrainZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out, errb bytes.Buffer
	go func() {
		errc <- serveDaemon(ctx, "127.0.0.1:0", daemonConfig{drain: 0}, &out, &errb, func(addr string) { ready <- addr })
	}()
	select {
	case <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v\n%s", err, errb.String())
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("drain=0 shutdown returned error: %v", err)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
