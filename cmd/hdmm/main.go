// Command hdmm answers a workload of predicate counting queries over a CSV
// dataset under ε-differential privacy using the High-Dimensional Matrix
// Mechanism.
//
// The dataset is a headerless CSV of non-negative integers, one record per
// line, one column per attribute. The domain is given as comma-separated
// attribute sizes; the workload as a comma-separated list of per-attribute
// predicate-set specs joined by "x", one product per -query flag (repeatable):
//
//	hdmm -domain 2,115 -query I,R -query T,P -eps 1.0 data.csv
//
// Specs: I (identity), T (total), P (prefixes), R (all ranges), W<k>
// (width-k ranges). Output: one line per query with the private answer.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hdmm "repro"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, ";") }
func (q *queryFlags) Set(v string) error { *q = append(*q, v); return nil }

func main() {
	domainFlag := flag.String("domain", "", "comma-separated attribute sizes, e.g. 2,115")
	epsFlag := flag.Float64("eps", 1.0, "privacy budget ε")
	seedFlag := flag.Uint64("seed", 0, "noise seed (0 = fixed default; use distinct seeds per release)")
	restartsFlag := flag.Int("restarts", 5, "strategy-selection restarts")
	workersFlag := flag.Int("workers", 0, "cores for strategy selection and numeric kernels (0 = all; results are identical for any value)")
	var queries queryFlags
	flag.Var(&queries, "query", "workload product, e.g. I,R (repeatable)")
	flag.Parse()

	if *domainFlag == "" || len(queries) == 0 || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hdmm -domain n1,n2,... -query spec [-query spec ...] [-eps ε] data.csv")
		os.Exit(2)
	}

	sizes, err := parseInts(*domainFlag)
	check(err)
	attrs := make([]hdmm.Attribute, len(sizes))
	for i, n := range sizes {
		attrs[i] = hdmm.Attribute{Name: fmt.Sprintf("A%d", i), Size: n}
	}
	dom := hdmm.NewDomain(attrs...)

	products := make([]hdmm.Product, 0, len(queries))
	for _, q := range queries {
		specs := strings.Split(q, ",")
		if len(specs) != len(sizes) {
			check(fmt.Errorf("query %q has %d specs, domain has %d attributes", q, len(specs), len(sizes)))
		}
		terms := make([]hdmm.PredicateSet, len(specs))
		for i, s := range specs {
			terms[i], err = parseSpec(s, sizes[i])
			check(err)
		}
		products = append(products, hdmm.NewProduct(terms...))
	}
	w, err := hdmm.NewWorkload(dom, products...)
	check(err)

	records, err := readCSV(flag.Arg(0), sizes)
	check(err)
	x := dom.DataVector(records)

	hdmm.SetWorkers(*workersFlag) // kernel-level bound; Selection.Workers bounds the restart fan-out
	res, err := hdmm.Run(w, x, *epsFlag, hdmm.Options{
		Seed:      *seedFlag,
		Selection: hdmm.SelectOptions{Restarts: *restartsFlag, Workers: *workersFlag},
	})
	check(err)

	fmt.Fprintf(os.Stderr, "strategy: %s, predicted per-query RMSE at ε=%g: %.3f\n",
		res.Operator, *epsFlag, res.ExpectedRMSE)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for _, a := range res.Answers {
		fmt.Fprintf(out, "%.3f\n", a)
	}
}

func parseSpec(s string, n int) (hdmm.PredicateSet, error) {
	switch {
	case s == "I":
		return hdmm.Identity(n), nil
	case s == "T":
		return hdmm.Total(n), nil
	case s == "P":
		return hdmm.Prefix(n), nil
	case s == "R":
		return hdmm.AllRange(n), nil
	case strings.HasPrefix(s, "W"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("bad width spec %q", s)
		}
		return hdmm.WidthRange(n, k), nil
	}
	return nil, fmt.Errorf("unknown predicate-set spec %q (I|T|P|R|W<k>)", s)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad domain size %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func readCSV(path string, sizes []int) ([][]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records [][]int
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != len(sizes) {
			return nil, fmt.Errorf("line %d: %d fields, want %d", line, len(parts), len(sizes))
		}
		rec := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 || v >= sizes[i] {
				return nil, fmt.Errorf("line %d field %d: bad value %q for attribute of size %d", line, i, p, sizes[i])
			}
			rec[i] = v
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdmm:", err)
		os.Exit(1)
	}
}
