// Command hdmm answers workloads of predicate counting queries over CSV
// datasets under differential privacy using the High-Dimensional Matrix
// Mechanism. It follows HDMM's "optimize once, measure once, answer many"
// lifecycle with three modes:
//
//	hdmm optimize -domain 2,115 -query I,R -cache DIR        # precompute + persist strategy
//	hdmm serve -domain 2,115 -query I,R -cache DIR -eps 1 data.csv   # load strategy, answer
//	hdmm -domain 2,115 -query I,R -eps 1.0 data.csv          # legacy one-shot run
//
// optimize runs strategy selection (the expensive, data-independent step)
// and stores the result in the on-disk strategy registry at -cache, keyed
// by a canonical fingerprint of the workload and the selection options.
// serve resolves the same key — loading the persisted strategy instead of
// re-optimizing when one exists — measures the dataset once, and answers
// either the workload itself or the query products listed in -queries.
//
// The dataset is a headerless CSV of non-negative integers, one record per
// line, one column per attribute. The domain is given as comma-separated
// attribute sizes; the workload as a comma-separated list of per-attribute
// predicate-set specs joined per product, one product per -query flag
// (repeatable). Specs: I (identity), T (total), P (prefixes), R (all
// ranges), W<k> (width-k ranges). Output: one line per query with the
// private answer.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	hdmm "repro"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 {
		switch args[0] {
		case "optimize":
			err = cmdOptimize(args[1:], os.Stdout, os.Stderr)
		case "serve":
			err = cmdServe(args[1:], os.Stdout, os.Stderr)
		case "run":
			err = cmdRun(args[1:], os.Stdout, os.Stderr)
		default:
			err = cmdRun(args, os.Stdout, os.Stderr)
		}
	} else {
		err = cmdRun(args, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdmm:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError distinguishes bad invocations (exit 2) from runtime failures.
type usageError string

func (e usageError) Error() string { return string(e) }

// workloadFlags is the flag set shared by every mode: domain + products.
type workloadFlags struct {
	fs      *flag.FlagSet
	domain  *string
	queries queryFlags
}

func newWorkloadFlags(name string) *workloadFlags {
	wf := &workloadFlags{fs: flag.NewFlagSet(name, flag.ContinueOnError)}
	wf.domain = wf.fs.String("domain", "", "comma-separated attribute sizes, e.g. 2,115")
	wf.fs.Var(&wf.queries, "query", "workload product, e.g. I,R (repeatable)")
	return wf
}

// workload parses the -domain and -query flags into a workload.
func (wf *workloadFlags) workload() (*hdmm.Workload, []int, error) {
	if *wf.domain == "" || len(wf.queries) == 0 {
		return nil, nil, usageError("missing -domain or -query")
	}
	sizes, err := parseInts(*wf.domain)
	if err != nil {
		return nil, nil, err
	}
	attrs := make([]hdmm.Attribute, len(sizes))
	for i, n := range sizes {
		attrs[i] = hdmm.Attribute{Name: fmt.Sprintf("A%d", i), Size: n}
	}
	dom := hdmm.NewDomain(attrs...)
	products := make([]hdmm.Product, 0, len(wf.queries))
	for _, q := range wf.queries {
		p, err := parseProduct(q, sizes)
		if err != nil {
			return nil, nil, err
		}
		products = append(products, p)
	}
	w, err := hdmm.NewWorkload(dom, products...)
	return w, sizes, err
}

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, ";") }
func (q *queryFlags) Set(v string) error { *q = append(*q, v); return nil }

// cmdOptimize precomputes a strategy and persists it in the registry.
func cmdOptimize(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("optimize")
	cache := wf.fs.String("cache", "", "strategy registry directory (required)")
	restarts := wf.fs.Int("restarts", 5, "strategy-selection restarts")
	optseed := wf.fs.Uint64("optseed", 0, "strategy-selection seed")
	workers := wf.fs.Int("workers", 0, "cores (0 = all; results are identical for any value)")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if *cache == "" {
		return usageError("optimize requires -cache DIR")
	}
	w, _, err := wf.workload()
	if err != nil {
		return err
	}

	hdmm.SetWorkers(*workers)
	opts := hdmm.SelectOptions{Restarts: *restarts, Seed: *optseed, Workers: *workers, CacheDir: *cache}
	key, sel, fromCache, err := hdmm.Optimize(w, opts)
	if err != nil {
		return err
	}
	action := "optimized"
	if fromCache {
		action = "already optimized"
	}
	rmse := math.Sqrt(2 * sel.Err / float64(w.NumQueries()))
	fmt.Fprintf(stderr, "%s %d-query workload: operator %s, expected per-query RMSE at ε=1: %.4f\n",
		action, w.NumQueries(), sel.Operator, rmse)
	fmt.Fprintf(stderr, "strategy %s stored in %s\n", key, *cache)
	fmt.Fprintln(stdout, key)
	return nil
}

// cmdServe loads (or computes) a strategy, measures the dataset once, and
// answers queries.
func cmdServe(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("serve")
	cache := wf.fs.String("cache", "", "strategy registry directory")
	eps := wf.fs.Float64("eps", 1.0, "privacy budget ε")
	delta := wf.fs.Float64("delta", 0, "privacy parameter δ (0 = Laplace, >0 = Gaussian)")
	seed := wf.fs.Uint64("seed", 0, "noise seed (0 = fixed default; use distinct seeds per release)")
	restarts := wf.fs.Int("restarts", 5, "strategy-selection restarts (cache-miss fallback)")
	optseed := wf.fs.Uint64("optseed", 0, "strategy-selection seed (must match optimize)")
	workers := wf.fs.Int("workers", 0, "cores (0 = all; results are identical for any value)")
	queryFile := wf.fs.String("queries", "", "file of extra query products to answer (one spec per line)")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if wf.fs.NArg() != 1 {
		return usageError("serve requires exactly one data.csv argument")
	}
	w, sizes, err := wf.workload()
	if err != nil {
		return err
	}
	records, err := readCSV(wf.fs.Arg(0), sizes)
	if err != nil {
		return err
	}
	x := w.Domain.DataVector(records)

	hdmm.SetWorkers(*workers)
	eng, err := hdmm.NewEngine(w, x, *eps, hdmm.EngineOptions{
		Selection: hdmm.SelectOptions{Restarts: *restarts, Seed: *optseed, Workers: *workers, CacheDir: *cache},
		Delta:     *delta,
		Seed:      *seed,
		Workers:   *workers,
	})
	if err != nil {
		return err
	}
	source := "computed"
	if eng.FromCache() {
		source = "cache"
	}
	fmt.Fprintf(stderr, "strategy: %s (%s), predicted per-query RMSE at ε=%g: %.3f\n",
		eng.Operator(), source, *eps, eng.ExpectedRMSE())

	var answers []float64
	if *queryFile != "" {
		products, err := readQueryFile(*queryFile, sizes)
		if err != nil {
			return err
		}
		parts, err := eng.Answer(products)
		if err != nil {
			return err
		}
		for _, p := range parts {
			answers = append(answers, p...)
		}
	} else {
		answers, err = eng.AnswerWorkload(w)
		if err != nil {
			return err
		}
	}
	return writeAnswers(stdout, answers)
}

// cmdRun is the legacy one-shot mode: select, measure, answer in one go.
func cmdRun(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("run")
	eps := wf.fs.Float64("eps", 1.0, "privacy budget ε")
	seed := wf.fs.Uint64("seed", 0, "noise seed (0 = fixed default; use distinct seeds per release)")
	restarts := wf.fs.Int("restarts", 5, "strategy-selection restarts")
	workers := wf.fs.Int("workers", 0, "cores for strategy selection and numeric kernels (0 = all; results are identical for any value)")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if wf.fs.NArg() != 1 {
		return usageError("usage: hdmm [run|optimize|serve] -domain n1,n2,... -query spec [-query spec ...] [-eps ε] data.csv")
	}
	w, sizes, err := wf.workload()
	if err != nil {
		return err
	}
	records, err := readCSV(wf.fs.Arg(0), sizes)
	if err != nil {
		return err
	}
	x := w.Domain.DataVector(records)

	hdmm.SetWorkers(*workers) // kernel-level bound; Selection.Workers bounds the restart fan-out
	res, err := hdmm.Run(w, x, *eps, hdmm.Options{
		Seed:      *seed,
		Selection: hdmm.SelectOptions{Restarts: *restarts, Workers: *workers},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "strategy: %s, predicted per-query RMSE at ε=%g: %.3f\n",
		res.Operator, *eps, res.ExpectedRMSE)
	return writeAnswers(stdout, res.Answers)
}

func writeAnswers(w io.Writer, answers []float64) error {
	out := bufio.NewWriter(w)
	for _, a := range answers {
		fmt.Fprintf(out, "%.3f\n", a)
	}
	return out.Flush()
}

func parseProduct(q string, sizes []int) (hdmm.Product, error) {
	specs := strings.Split(q, ",")
	if len(specs) != len(sizes) {
		return hdmm.Product{}, fmt.Errorf("query %q has %d specs, domain has %d attributes", q, len(specs), len(sizes))
	}
	terms := make([]hdmm.PredicateSet, len(specs))
	for i, s := range specs {
		t, err := parseSpec(s, sizes[i])
		if err != nil {
			return hdmm.Product{}, err
		}
		terms[i] = t
	}
	return hdmm.NewProduct(terms...), nil
}

// readQueryFile parses one product spec per line ("I,R"); blank lines and
// #-comments are skipped.
func readQueryFile(path string, sizes []int) ([]hdmm.Product, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var products []hdmm.Product
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := parseProduct(text, sizes)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		products = append(products, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(products) == 0 {
		return nil, fmt.Errorf("%s: no query products", path)
	}
	return products, nil
}

func parseSpec(s string, n int) (hdmm.PredicateSet, error) {
	switch {
	case s == "I":
		return hdmm.Identity(n), nil
	case s == "T":
		return hdmm.Total(n), nil
	case s == "P":
		return hdmm.Prefix(n), nil
	case s == "R":
		return hdmm.AllRange(n), nil
	case strings.HasPrefix(s, "W"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("bad width spec %q", s)
		}
		return hdmm.WidthRange(n, k), nil
	}
	return nil, fmt.Errorf("unknown predicate-set spec %q (I|T|P|R|W<k>)", s)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad domain size %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func readCSV(path string, sizes []int) ([][]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records [][]int
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != len(sizes) {
			return nil, fmt.Errorf("line %d: %d fields, want %d", line, len(parts), len(sizes))
		}
		rec := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 || v >= sizes[i] {
				return nil, fmt.Errorf("line %d field %d: bad value %q for attribute of size %d", line, i, p, sizes[i])
			}
			rec[i] = v
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}
