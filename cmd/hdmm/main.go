// Command hdmm answers workloads of predicate counting queries over CSV
// datasets under differential privacy using the High-Dimensional Matrix
// Mechanism. It follows HDMM's "optimize once, measure once, answer many"
// lifecycle with three modes:
//
//	hdmm optimize -domain 2,115 -query I,R -cache DIR        # precompute + persist strategy
//	hdmm serve -domain 2,115 -query I,R -cache DIR -eps 1 data.csv   # load strategy, answer
//	hdmm serve -http :8080 -cache DIR -snapshot-dir SNAPS    # HTTP answer-serving daemon
//	hdmm loadtest -addr http://127.0.0.1:8080 -rate 200      # open-loop load against a daemon
//	hdmm snapshots -dir SNAPS                                # inspect a snapshot directory
//	hdmm -domain 2,115 -query I,R -eps 1.0 data.csv          # legacy one-shot run
//
// optimize runs strategy selection (the expensive, data-independent step)
// and stores the result in the on-disk strategy registry at -cache, keyed
// by a canonical fingerprint of the workload and the selection options.
// serve resolves the same key — loading the persisted strategy instead of
// re-optimizing when one exists — measures the dataset once, and answers
// either the workload itself or the query products listed in -queries.
//
// serve -http ADDR runs the multi-tenant HTTP daemon instead of answering
// once: tenants register workloads over POST /v1/engines and answer query
// batches via POST /v1/engines/{key}/answer, all sharing the strategy
// registry at -cache. With -domain/-query and a data.csv argument the
// daemon pre-registers that workload at startup and prints its engine key.
// The daemon drains in-flight requests and exits cleanly on SIGINT/SIGTERM.
//
// The dataset is a headerless CSV of non-negative integers, one record per
// line, one column per attribute. The domain is given as comma-separated
// attribute sizes; the workload as a comma-separated list of per-attribute
// predicate-set specs joined per product, one product per -query flag
// (repeatable). Specs: I (identity), T (total), P (prefixes), R (all
// ranges), W<k> (width-k ranges). Output: one line per query with the
// private answer.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	hdmm "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 {
		switch args[0] {
		case "optimize":
			err = cmdOptimize(args[1:], os.Stdout, os.Stderr)
		case "serve":
			err = cmdServe(args[1:], os.Stdout, os.Stderr)
		case "run":
			err = cmdRun(args[1:], os.Stdout, os.Stderr)
		case "bench":
			err = cmdBench(args[1:], os.Stdout, os.Stderr)
		case "snapshots":
			err = cmdSnapshots(args[1:], os.Stdout, os.Stderr)
		case "loadtest":
			err = cmdLoadtest(args[1:], os.Stdout, os.Stderr)
		default:
			err = cmdRun(args, os.Stdout, os.Stderr)
		}
	} else {
		err = cmdRun(args, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdmm:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError distinguishes bad invocations (exit 2) from runtime failures.
type usageError string

func (e usageError) Error() string { return string(e) }

// workloadFlags is the flag set shared by every mode: domain + products,
// plus the process-wide kernel backend.
type workloadFlags struct {
	fs      *flag.FlagSet
	domain  *string
	queries queryFlags
	kernels *string
}

func newWorkloadFlags(name string) *workloadFlags {
	wf := &workloadFlags{fs: flag.NewFlagSet(name, flag.ContinueOnError)}
	wf.domain = wf.fs.String("domain", "", "comma-separated attribute sizes, e.g. 2,115")
	wf.fs.Var(&wf.queries, "query", "workload product, e.g. I,R (repeatable)")
	wf.kernels = wf.fs.String("kernels", "", "kernel backend: reference (scalar, byte-stable across releases) or fast (multi-accumulator/AVX2, ≥2x on dot-bound kernels; strategy-cache and engine keys are tagged). Empty = keep the HDMM_KERNELS setting or the reference default")
	return wf
}

// applyKernels applies the -kernels flag, if set, before any numeric work
// runs. The backend is a startup knob — this is the one place the CLI
// sets it, alongside SetWorkers.
func (wf *workloadFlags) applyKernels() error {
	if *wf.kernels == "" {
		return nil
	}
	if _, err := hdmm.SetKernelBackend(*wf.kernels); err != nil {
		return usageError(err.Error())
	}
	return nil
}

// workload parses the -domain and -query flags into a workload.
func (wf *workloadFlags) workload() (*hdmm.Workload, []int, error) {
	if *wf.domain == "" || len(wf.queries) == 0 {
		return nil, nil, usageError("missing -domain or -query")
	}
	sizes, err := hdmm.ParseSizes(*wf.domain)
	if err != nil {
		return nil, nil, err
	}
	attrs := make([]hdmm.Attribute, len(sizes))
	for i, n := range sizes {
		attrs[i] = hdmm.Attribute{Name: fmt.Sprintf("A%d", i), Size: n}
	}
	dom := hdmm.NewDomain(attrs...)
	products := make([]hdmm.Product, 0, len(wf.queries))
	for _, q := range wf.queries {
		p, err := hdmm.ParseProduct(q, sizes)
		if err != nil {
			return nil, nil, err
		}
		products = append(products, p)
	}
	w, err := hdmm.NewWorkload(dom, products...)
	return w, sizes, err
}

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, ";") }
func (q *queryFlags) Set(v string) error { *q = append(*q, v); return nil }

// cmdOptimize precomputes a strategy and persists it in the registry.
func cmdOptimize(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("optimize")
	cache := wf.fs.String("cache", "", "strategy registry directory (required)")
	restarts := wf.fs.Int("restarts", 5, "strategy-selection restarts")
	optseed := wf.fs.Uint64("optseed", 0, "strategy-selection seed")
	workers := wf.fs.Int("workers", 0, "cores (0 = all; results are identical for any value)")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if *cache == "" {
		return usageError("optimize requires -cache DIR")
	}
	w, _, err := wf.workload()
	if err != nil {
		return err
	}

	hdmm.SetWorkers(*workers)
	if err := wf.applyKernels(); err != nil {
		return err
	}
	opts := hdmm.SelectOptions{Restarts: *restarts, Seed: *optseed, Workers: *workers, CacheDir: *cache}
	key, sel, fromCache, err := hdmm.Optimize(w, opts)
	if err != nil {
		return err
	}
	action := "optimized"
	if fromCache {
		action = "already optimized"
	}
	rmse := math.Sqrt(2 * sel.Err / float64(w.NumQueries()))
	fmt.Fprintf(stderr, "%s %d-query workload: operator %s, expected per-query RMSE at ε=1: %.4f\n",
		action, w.NumQueries(), sel.Operator, rmse)
	fmt.Fprintf(stderr, "strategy %s stored in %s\n", key, *cache)
	fmt.Fprintln(stdout, key)
	return nil
}

// cmdServe loads (or computes) a strategy, measures the dataset once, and
// answers queries — or, with -http, runs the multi-tenant HTTP daemon.
func cmdServe(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("serve")
	cache := wf.fs.String("cache", "", "strategy registry directory")
	eps := wf.fs.Float64("eps", 1.0, "privacy budget ε")
	delta := wf.fs.Float64("delta", 0, "privacy parameter δ (0 = Laplace, >0 = Gaussian, requires ε ≤ 1)")
	seed := wf.fs.Uint64("seed", 0, "noise seed (0 = fresh entropy per run; non-zero = reproducible noise)")
	restarts := wf.fs.Int("restarts", 5, "strategy-selection restarts (cache-miss fallback)")
	optseed := wf.fs.Uint64("optseed", 0, "strategy-selection seed (must match optimize)")
	workers := wf.fs.Int("workers", 0, "cores (0 = all; results are identical for any value)")
	queryFile := wf.fs.String("queries", "", "file of extra query products to answer (one spec per line)")
	httpAddr := wf.fs.String("http", "", "run the HTTP answer-serving daemon on this address (e.g. :8080)")
	drain := wf.fs.Duration("drain", 30*time.Second, "how long the daemon waits for in-flight requests on shutdown")
	snapDir := wf.fs.String("snapshot-dir", "", "durable engine-snapshot directory: a restarted daemon recovers its engines without re-measuring")
	solveMaxIter := wf.fs.Int("solve-max-iter", 0, "cap on LSMR iterations for union-strategy reconstruction (0 = solver default); a registration whose solve hits the cap fails instead of serving unconverged answers")
	logFormat := wf.fs.String("log-format", "text", "daemon log format: text or json")
	logLevel := wf.fs.String("log-level", "info", "daemon log level: debug, info, warn, or error")
	pprofAddr := wf.fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = no profiling endpoint")
	slowReq := wf.fs.Duration("slow-request", 0, "log a warning with the per-stage breakdown for requests slower than this (0 = 1s default; negative = disabled)")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if *httpAddr != "" {
		cfg := daemonConfig{
			cache:        *cache,
			snapDir:      *snapDir,
			eps:          *eps,
			delta:        *delta,
			seed:         *seed,
			restarts:     *restarts,
			optseed:      *optseed,
			workers:      *workers,
			kernels:      *wf.kernels,
			drain:        *drain,
			solveMaxIter: *solveMaxIter,
			logFormat:    *logFormat,
			logLevel:     *logLevel,
			pprofAddr:    *pprofAddr,
			slowReq:      *slowReq,
		}
		if *queryFile != "" {
			return usageError("-queries applies to one-shot serve; the HTTP daemon answers query batches per request")
		}
		if *drain < 0 {
			return usageError("-drain must be non-negative (0 = shut down without waiting)")
		}
		switch {
		case wf.fs.NArg() > 1:
			return usageError("serve -http takes at most one data.csv argument")
		case wf.fs.NArg() == 1:
			if *wf.domain == "" || len(wf.queries) == 0 {
				return usageError("pre-registering a dataset requires -domain and -query")
			}
			cfg.domain, cfg.queries, cfg.dataPath = *wf.domain, wf.queries, wf.fs.Arg(0)
		case *wf.domain != "" || len(wf.queries) > 0:
			return usageError("serve -http with -domain/-query requires a data.csv argument to pre-register")
		}
		if cfg.dataPath == "" {
			// Without a pre-registered workload the budget/seed flags have
			// nothing to apply to (tenants carry their own budgets per
			// registration request); silently ignoring them would let an
			// operator believe -eps set a daemon-wide default.
			var stray []string
			wf.fs.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "eps", "delta", "seed", "restarts", "optseed":
					stray = append(stray, "-"+f.Name)
				}
			})
			if len(stray) > 0 {
				return usageError(strings.Join(stray, ", ") + " only apply to a pre-registered workload; tenants set budgets per registration request (add -domain/-query and a data.csv to pre-register)")
			}
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		// Once the first signal starts the graceful drain, restore default
		// signal handling so a second SIGINT/SIGTERM terminates the
		// process immediately instead of being swallowed for the rest of
		// the drain window.
		context.AfterFunc(ctx, stop)
		return serveDaemon(ctx, *httpAddr, cfg, stdout, stderr, nil)
	}
	if wf.fs.NArg() != 1 {
		return usageError("serve requires exactly one data.csv argument")
	}
	var daemonOnly []string
	wf.fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "drain", "snapshot-dir", "solve-max-iter", "log-format", "log-level", "pprof-addr", "slow-request":
			daemonOnly = append(daemonOnly, "-"+f.Name)
		}
	})
	if len(daemonOnly) > 0 {
		return usageError(strings.Join(daemonOnly, ", ") + " only apply to the HTTP daemon (-http); one-shot serve answers and exits")
	}
	w, sizes, err := wf.workload()
	if err != nil {
		return err
	}
	records, err := readCSV(wf.fs.Arg(0), sizes)
	if err != nil {
		return err
	}
	x := w.Domain.DataVector(records)

	hdmm.SetWorkers(*workers)
	if err := wf.applyKernels(); err != nil {
		return err
	}
	eng, err := hdmm.NewEngine(w, x, *eps, hdmm.EngineOptions{
		Selection: hdmm.SelectOptions{Restarts: *restarts, Seed: *optseed, Workers: *workers, CacheDir: *cache},
		Delta:     *delta,
		Seed:      *seed,
		Workers:   *workers,
	})
	if err != nil {
		return err
	}
	source := "computed"
	if eng.FromCache() {
		source = "cache"
	}
	fmt.Fprintf(stderr, "strategy: %s (%s), predicted per-query RMSE at ε=%g: %.3f\n",
		eng.Operator(), source, *eps, eng.ExpectedRMSE())

	var answers []float64
	if *queryFile != "" {
		products, err := readQueryFile(*queryFile, sizes)
		if err != nil {
			return err
		}
		parts, err := eng.Answer(products)
		if err != nil {
			return err
		}
		for _, p := range parts {
			answers = append(answers, p...)
		}
	} else {
		answers, err = eng.AnswerWorkload(w)
		if err != nil {
			return err
		}
	}
	return writeAnswers(stdout, answers)
}

// daemonConfig carries the serve flags into the HTTP daemon, plus the
// optional workload to pre-register at startup.
type daemonConfig struct {
	cache        string
	snapDir      string // durable engine-snapshot directory ("" = no durability)
	eps          float64
	delta        float64
	seed         uint64
	restarts     int
	optseed      uint64
	workers      int
	kernels      string        // kernel backend name ("" = leave the process default)
	drain        time.Duration // shutdown grace for in-flight requests
	solveMaxIter int           // union-reconstruction LSMR iteration cap (0 = default)
	logFormat    string        // slog handler: "text" or "json" ("" = text)
	logLevel     string        // minimum level ("" = info)
	pprofAddr    string        // separate net/http/pprof address ("" = off)
	slowReq      time.Duration // slow-request log threshold (0 = server default)
	domain       string        // pre-registration workload ("" = none)
	queries      []string      // pre-registration product specs
	dataPath     string        // pre-registration dataset
}

// serveDaemon runs the HTTP answer-serving daemon on addr until ctx is
// cancelled (SIGINT/SIGTERM in production), then drains in-flight requests
// and exits cleanly. onReady, when non-nil, receives the bound address
// after every startup message has been written (tests listen on :0).
func serveDaemon(ctx context.Context, addr string, cfg daemonConfig, stdout, stderr io.Writer, onReady func(string)) error {
	hdmm.SetWorkers(cfg.workers)
	if cfg.kernels != "" {
		if _, err := hdmm.SetKernelBackend(cfg.kernels); err != nil {
			return usageError(err.Error())
		}
	}
	format, level := cfg.logFormat, cfg.logLevel
	if format == "" {
		format = "text"
	}
	if level == "" {
		level = "info"
	}
	logger, err := obs.NewLogger(stderr, format, level)
	if err != nil {
		return usageError(err.Error())
	}
	srv, err := hdmm.NewServer(hdmm.ServerConfig{
		CacheDir:             cfg.cache,
		SnapshotDir:          cfg.snapDir,
		Workers:              cfg.workers,
		SolveMaxIter:         cfg.solveMaxIter,
		Logger:               logger,
		SlowRequestThreshold: cfg.slowReq,
	})
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		// The profiling endpoint binds its own listener — typically a
		// loopback address — so exposing the API never exposes pprof. An
		// explicit mux rather than DefaultServeMux: nothing else this
		// process registers can leak onto the profiling port.
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("binding pprof listener: %w", err)
		}
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		defer pprofSrv.Close()
		go func() { _ = pprofSrv.Serve(pln) }()
		fmt.Fprintf(stderr, "hdmm: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}
	// Bind before pre-registration: a busy or invalid address is the most
	// common daemon startup failure, and discovering it AFTER minutes of
	// strategy optimization would waste the work and discard a private
	// measurement whose printed engine key never becomes reachable.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	serving := false
	defer func() {
		if !serving {
			ln.Close()
		}
	}()
	if cfg.dataPath != "" {
		sizes, err := hdmm.ParseSizes(cfg.domain)
		if err != nil {
			return err
		}
		records, err := readCSV(cfg.dataPath, sizes)
		if err != nil {
			return err
		}
		if records == nil {
			records = [][]int{} // an empty dataset is a zero histogram, not a missing one
		}
		// Registration can optimize for minutes on a cold cache, and
		// NotifyContext has suppressed default signal termination — so the
		// wait must watch ctx or Ctrl-C would be dead until startup
		// finishes. Exiting abandons the goroutine; process teardown
		// reclaims its CPU.
		type preResult struct {
			resp *server.RegisterResponse
			err  error
		}
		done := make(chan preResult, 1)
		go func() {
			resp, err := srv.Register(&server.RegisterRequest{
				Domain:   sizes,
				Queries:  cfg.queries,
				Records:  records,
				Eps:      cfg.eps,
				Delta:    cfg.delta,
				Seed:     cfg.seed,
				Restarts: cfg.restarts,
				OptSeed:  cfg.optseed,
			})
			done <- preResult{resp, err}
		}()
		var resp *server.RegisterResponse
		select {
		case <-ctx.Done():
			return errors.New("interrupted during startup pre-registration")
		case pr := <-done:
			if pr.err != nil {
				return pr.err
			}
			resp = pr.resp
		}
		source := "computed"
		if resp.FromCache {
			source = "cache"
		}
		fmt.Fprintf(stderr, "pre-registered engine: strategy %s (%s), predicted per-query RMSE at ε=%g: %.3f\n",
			resp.Operator, source, cfg.eps, resp.ExpectedRMSE)
		fmt.Fprintln(stdout, resp.Key)
	}

	serving = true
	fmt.Fprintf(stderr, "hdmm: serving HTTP on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	httpSrv := &http.Server{
		Handler: srv,
		// A long-running public daemon must bound slow clients: without
		// these a peer trickling header bytes (slowloris) or idling
		// keep-alive connections pins a goroutine and fd per connection
		// forever. Body reads stay untimed — large data-vector uploads are
		// legitimate — and are bounded by the server's MaxBodyBytes cap.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// cfg.drain is honored as given: 0 means shut down without
		// waiting (the already-expired context makes Shutdown close
		// listeners and return immediately).
		drain := cfg.drain
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		<-errc // Serve has returned http.ErrServerClosed
		switch {
		case err == nil:
			fmt.Fprintln(stderr, "hdmm: shut down cleanly")
			return nil
		case errors.Is(err, context.DeadlineExceeded):
			// A registration mid-optimization can outlive any reasonable
			// grace period; the daemon drained what it could and cutting
			// the stragglers is the intended outcome, not a failure.
			fmt.Fprintf(stderr, "hdmm: shut down after draining for %s (some requests were still in flight)\n", drain)
			return nil
		default:
			return fmt.Errorf("shutting down: %w", err)
		}
	}
}

// cmdRun is the legacy one-shot mode: select, measure, answer in one go.
func cmdRun(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("run")
	eps := wf.fs.Float64("eps", 1.0, "privacy budget ε")
	seed := wf.fs.Uint64("seed", 0, "noise seed (0 = fresh entropy per run; non-zero = reproducible noise)")
	restarts := wf.fs.Int("restarts", 5, "strategy-selection restarts")
	workers := wf.fs.Int("workers", 0, "cores for strategy selection and numeric kernels (0 = all; results are identical for any value)")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if wf.fs.NArg() != 1 {
		return usageError("usage: hdmm [run|optimize|serve] -domain n1,n2,... -query spec [-query spec ...] [-eps ε] data.csv")
	}
	w, sizes, err := wf.workload()
	if err != nil {
		return err
	}
	records, err := readCSV(wf.fs.Arg(0), sizes)
	if err != nil {
		return err
	}
	x := w.Domain.DataVector(records)

	hdmm.SetWorkers(*workers) // kernel-level bound; Selection.Workers bounds the restart fan-out
	if err := wf.applyKernels(); err != nil {
		return err
	}
	res, err := hdmm.Run(w, x, *eps, hdmm.Options{
		Seed:      *seed,
		Selection: hdmm.SelectOptions{Restarts: *restarts, Workers: *workers},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "strategy: %s, predicted per-query RMSE at ε=%g: %.3f\n",
		res.Operator, *eps, res.ExpectedRMSE)
	return writeAnswers(stdout, res.Answers)
}

func writeAnswers(w io.Writer, answers []float64) error {
	out := bufio.NewWriter(w)
	for _, a := range answers {
		fmt.Fprintf(out, "%.3f\n", a)
	}
	return out.Flush()
}

// readQueryFile parses one product spec per line ("I,R"); blank lines and
// #-comments are skipped.
func readQueryFile(path string, sizes []int) ([]hdmm.Product, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var products []hdmm.Product
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := hdmm.ParseProduct(text, sizes)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		products = append(products, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(products) == 0 {
		return nil, fmt.Errorf("%s: no query products", path)
	}
	return products, nil
}

func readCSV(path string, sizes []int) ([][]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records [][]int
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != len(sizes) {
			return nil, fmt.Errorf("line %d: %d fields, want %d", line, len(parts), len(sizes))
		}
		rec := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 || v >= sizes[i] {
				return nil, fmt.Errorf("line %d field %d: bad value %q for attribute of size %d", line, i, p, sizes[i])
			}
			rec[i] = v
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}
