package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	hdmm "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

// loadtestRow is one row of the loadtest artifact. The first six fields
// are the exact shape of the bench harness's rows (BENCH_*.json), so the
// same tooling ingests both; the rest are load-test extensions — an
// open-loop run has percentiles and error counts where a closed
// microbenchmark loop has neither.
type loadtestRow struct {
	Op          string  `json:"op"`
	Workers     int     `json:"workers"` // in-flight cap of the open-loop generator
	Iters       int     `json:"iters"`   // requests completed
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"` // always 0: client-side allocs are not the server's story
	MBPerS      float64 `json:"mb_per_s"`      // request+response bytes moved per second

	TargetRate   float64 `json:"target_rate"`   // configured arrival rate (req/s)
	AchievedRate float64 `json:"achieved_rate"` // completions per second
	Offered      int     `json:"offered"`       // arrivals the Poisson schedule generated
	Errors       int     `json:"errors"`
	Dropped      int     `json:"dropped"` // arrivals shed at the in-flight cap
	P50Ns        float64 `json:"p50_ns"`
	P95Ns        float64 `json:"p95_ns"`
	P99Ns        float64 `json:"p99_ns"`
	MaxNs        float64 `json:"max_ns"`
}

// cmdLoadtest drives a running hdmm daemon with open-loop Poisson load:
// it registers a tenant (synthetic deterministic data unless the daemon
// already has it — registration is idempotent), then fires the chosen
// operation at the target rate and reports latency percentiles from the
// same histogram buckets the daemon's own /metrics uses. With -saturate
// it steps the rate up each round until p99 crosses -p99-bound.
func cmdLoadtest(args []string, stdout, stderr io.Writer) error {
	wf := newWorkloadFlags("loadtest")
	addr := wf.fs.String("addr", "", "base URL of the daemon under test, e.g. http://127.0.0.1:8080 (required)")
	eps := wf.fs.Float64("eps", 1.0, "privacy budget ε of the test tenant")
	seed := wf.fs.Uint64("seed", 1, "noise seed of the test tenant (non-zero: registration is reproducible and idempotent across runs)")
	restarts := wf.fs.Int("restarts", 2, "strategy-selection restarts for the test tenant's registration")
	optseed := wf.fs.Uint64("optseed", 9, "strategy-selection seed")
	op := wf.fs.String("op", "answer", "operation to drive: answer (batch answering) or register (idempotent re-registration)")
	rate := wf.fs.Float64("rate", 50, "mean arrival rate, requests per second")
	duration := wf.fs.Duration("duration", 5*time.Second, "arrival window per run")
	loadSeed := wf.fs.Uint64("load-seed", 0, "inter-arrival RNG seed (0 = fixed default; runs are reproducible arrival-for-arrival)")
	inflight := wf.fs.Int("max-inflight", 0, "cap on concurrent requests (0 = 1024); arrivals beyond it are dropped, never queued")
	saturate := wf.fs.Bool("saturate", false, "step the rate up by -factor per round until p99 exceeds -p99-bound")
	p99Bound := wf.fs.Duration("p99-bound", 0, "p99 latency that defines saturation (required with -saturate)")
	factor := wf.fs.Float64("factor", 2, "rate multiplier between saturation rounds")
	steps := wf.fs.Int("steps", 8, "maximum saturation rounds")
	wf.fs.SetOutput(stderr)
	if err := wf.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return usageError(err.Error())
	}
	if wf.fs.NArg() > 0 {
		return usageError("loadtest takes no positional arguments")
	}
	if *addr == "" {
		return usageError("loadtest requires -addr URL of a running daemon (hdmm serve -http)")
	}
	base := strings.TrimRight(*addr, "/")
	if *op != "answer" && *op != "register" {
		return usageError("-op must be answer or register")
	}
	if *saturate && *p99Bound <= 0 {
		return usageError("-saturate requires a positive -p99-bound")
	}
	// Default workload: small enough to register in milliseconds, real
	// enough (two attributes, range + prefix structure) to exercise the
	// Kronecker answer path.
	if *wf.domain == "" {
		*wf.domain = "2,16"
	}
	if len(wf.queries) == 0 {
		wf.queries = []string{"I,R", "T,P"}
	}
	sizes, err := hdmm.ParseSizes(*wf.domain)
	if err != nil {
		return err
	}
	cells := 1
	for _, n := range sizes {
		cells *= n
	}
	// Synthetic deterministic histogram: the loadtest measures the serving
	// path, not a dataset, and a fixed vector keeps registration idempotent
	// across runs against a long-lived daemon.
	data := make([]float64, cells)
	for i := range data {
		data[i] = float64((i * 7) % 13)
	}
	regBody, err := json.Marshal(&server.RegisterRequest{
		Domain:   sizes,
		Queries:  wf.queries,
		Data:     data,
		Eps:      *eps,
		Seed:     *seed,
		Restarts: *restarts,
		OptSeed:  *optseed,
	})
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 60 * time.Second}
	var moved atomic.Int64 // request+response bytes across the whole run
	post := func(ctx context.Context, url string, body []byte) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		n, _ := io.Copy(io.Discard, resp.Body)
		moved.Add(int64(len(body)) + n)
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		return nil
	}

	// Register the test tenant up front (and verify the daemon is
	// reachable) — the registration's one measurement must not be timed as
	// load, and op=answer needs the engine key.
	ctx := context.Background()
	regURL := base + "/v1/engines"
	resp, err := client.Post(regURL, "application/json", bytes.NewReader(regBody))
	if err != nil {
		return fmt.Errorf("registering test tenant: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registering test tenant: status %d: %s", resp.StatusCode, raw)
	}
	var reg server.RegisterResponse
	if err := json.Unmarshal(raw, &reg); err != nil {
		return fmt.Errorf("registering test tenant: %w", err)
	}
	fmt.Fprintf(stderr, "loadtest: tenant %s (strategy %s, reused=%v)\n", reg.Key[:16], reg.Operator, reg.Reused)

	var do func(context.Context) error
	switch *op {
	case "answer":
		ansBody, err := json.Marshal(map[string][]string{"queries": wf.queries})
		if err != nil {
			return err
		}
		ansURL := base + "/v1/engines/" + reg.Key + "/answer"
		// One untimed probe: a misconfigured batch must fail loudly before
		// the run, not as a 100% error rate in the report.
		if err := post(ctx, ansURL, ansBody); err != nil {
			return fmt.Errorf("probe answer request failed: %w", err)
		}
		do = func(ctx context.Context) error { return post(ctx, ansURL, ansBody) }
	case "register":
		// Idempotent re-registrations: same key every time, no second
		// measurement — this drives the validation/keying/pool-hit path.
		do = func(ctx context.Context) error { return post(ctx, regURL, regBody) }
	}

	load := obs.LoadOptions{Rate: *rate, Duration: *duration, Seed: *loadSeed, MaxInFlight: *inflight}
	start := time.Now()
	var results []*obs.LoadResult
	if *saturate {
		results, err = obs.SaturationSearch(ctx, obs.SaturationOptions{
			Load: load, Factor: *factor, MaxSteps: *steps, P99Bound: *p99Bound,
		}, do)
	} else {
		var r *obs.LoadResult
		r, err = obs.RunLoad(ctx, load, do)
		results = []*obs.LoadResult{r}
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// Bytes are tracked run-wide (the steps of a saturation search share
	// one counter), so per-row MB/s uses the run-wide mean bytes per op.
	totalReqs := 0
	for _, r := range results {
		totalReqs += r.Requests
	}
	bytesPerOp := 0.0
	if totalReqs > 0 {
		bytesPerOp = float64(moved.Load()) / float64(totalReqs)
	}

	workers := *inflight
	if workers <= 0 {
		workers = 1024
	}
	rows := make([]loadtestRow, len(results))
	for i, r := range results {
		rows[i] = loadtestRow{
			Op:           "serve/loadtest/" + *op,
			Workers:      workers,
			Iters:        r.Requests,
			NsPerOp:      r.Latency.Mean() * 1e9,
			MBPerS:       bytesPerOp * r.AchievedRate / 1e6,
			TargetRate:   r.TargetRate,
			AchievedRate: r.AchievedRate,
			Offered:      r.Offered,
			Errors:       r.Errors,
			Dropped:      r.Dropped,
			P50Ns:        float64(r.P50.Nanoseconds()),
			P95Ns:        float64(r.P95.Nanoseconds()),
			P99Ns:        float64(r.P99.Nanoseconds()),
			MaxNs:        float64(r.Max.Nanoseconds()),
		}
		fmt.Fprintf(stderr, "loadtest: %s rate %.0f/s: %d reqs, %d errors, %d dropped, p50 %s p95 %s p99 %s max %s\n",
			*op, r.TargetRate, r.Requests, r.Errors, r.Dropped, r.P50, r.P95, r.P99, r.Max)
	}
	if *saturate {
		last := results[len(results)-1]
		if last.P99 > *p99Bound || last.Errors > 0 || last.Dropped > 0 {
			fmt.Fprintf(stderr, "loadtest: saturated at %.0f req/s (p99 %s, bound %s) after %s\n",
				last.TargetRate, last.P99, *p99Bound, elapsed.Round(time.Millisecond))
		} else {
			fmt.Fprintf(stderr, "loadtest: no saturation within %d rounds (final rate %.0f req/s, p99 %s)\n",
				len(results), last.TargetRate, last.P99)
		}
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
