package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCmdBench runs the harness at the shortest measurement window and
// checks the BENCH_5-format artifact: every expected op is present with
// sane fields, so the CI bench job cannot silently upload an empty or
// malformed trajectory.
func TestCmdBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if err := cmdBench([]string{"-benchtime", "1", "-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("cmdBench: %v\nstderr: %s", err, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []benchResult
	if err := json.Unmarshal(blob, &results); err != nil {
		t.Fatalf("BENCH json: %v", err)
	}
	want := map[string]bool{
		"kron/matvec": false, "kron/mattvec": false, "kron/matmul16": false,
		"reconstruct/kron": false, "reconstruct/union": false, "serve/answer512": false,
	}
	for _, r := range results {
		if _, ok := want[r.Op]; ok {
			want[r.Op] = true
		}
		if r.NsPerOp <= 0 || r.Iters <= 0 || r.Workers <= 0 {
			t.Errorf("%s (workers=%d): non-positive measurement %+v", r.Op, r.Workers, r)
		}
		if r.AllocsPerOp < 0 || r.MBPerS < 0 {
			t.Errorf("%s: negative counters %+v", r.Op, r)
		}
	}
	for op, seen := range want {
		if !seen {
			t.Errorf("op %s missing from results", op)
		}
	}
}

// TestCmdBenchRejectsArgs: bench takes flags only.
func TestCmdBenchRejectsArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := cmdBench([]string{"extra"}, &stdout, &stderr)
	if _, ok := err.(usageError); !ok {
		t.Fatalf("want usageError, got %v", err)
	}
}
