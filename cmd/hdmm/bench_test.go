package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCmdBench runs the harness at the shortest measurement window and
// checks the BENCH_5-format artifact: every expected op is present with
// sane fields, so the CI bench job cannot silently upload an empty or
// malformed trajectory.
func TestCmdBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if err := cmdBench([]string{"-benchtime", "1", "-workers", "1,2", "-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("cmdBench: %v\nstderr: %s", err, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []benchResult
	if err := json.Unmarshal(blob, &results); err != nil {
		t.Fatalf("BENCH json: %v", err)
	}
	want := map[string]bool{
		"kron/matvec": false, "kron/mattvec": false, "kron/matmul16": false,
		"reconstruct/kron": false, "reconstruct/union": false,
		"reconstruct/union-batch16": false, "reconstruct/union-warm": false,
		"serve/answer512": false, "snapshot/roundtrip": false,
	}
	workerRows := map[int]int{}
	for _, r := range results {
		if _, ok := want[r.Op]; ok {
			want[r.Op] = true
		}
		workerRows[r.Workers]++
		if r.NsPerOp <= 0 || r.Iters <= 0 || r.Workers <= 0 {
			t.Errorf("%s (workers=%d): non-positive measurement %+v", r.Op, r.Workers, r)
		}
		if r.AllocsPerOp < 0 || r.MBPerS < 0 {
			t.Errorf("%s: negative counters %+v", r.Op, r)
		}
	}
	for op, seen := range want {
		if !seen {
			t.Errorf("op %s missing from results", op)
		}
	}
	if workerRows[1] != len(want) || workerRows[2] != len(want) {
		t.Errorf("worker sweep rows = %v, want %d per requested count", workerRows, len(want))
	}
}

// TestParseWorkerSet: the sweep flag deduplicates, keeps order, and rejects
// garbage; the default sweep is bounded by GOMAXPROCS and starts at 1.
func TestParseWorkerSet(t *testing.T) {
	set, err := parseWorkerSet("4, 1,4,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 || set[0] != 4 || set[1] != 1 || set[2] != 8 {
		t.Fatalf("parseWorkerSet = %v", set)
	}
	for _, bad := range []string{"0", "-2", "x", "1,,2"} {
		if _, err := parseWorkerSet(bad); err == nil {
			t.Errorf("parseWorkerSet(%q) accepted", bad)
		}
	}
	def, err := parseWorkerSet("")
	if err != nil || len(def) == 0 || def[0] != 1 {
		t.Fatalf("default sweep = %v, %v", def, err)
	}
	seen := map[int]bool{}
	for _, w := range def {
		if seen[w] {
			t.Fatalf("default sweep has duplicate %d: %v", w, def)
		}
		seen[w] = true
	}
}

// TestAssertImproves covers the CI regression gate: a run must beat the
// baseline's best MB/s for the asserted op, and a baseline it cannot beat
// (or that lacks the op) is an error.
func TestAssertImproves(t *testing.T) {
	results := []benchResult{
		{Op: "reconstruct/union", Workers: 1, MBPerS: 50},
		{Op: "reconstruct/union", Workers: 2, MBPerS: 70},
	}
	writeBaseline := func(rows []benchResult) string {
		blob, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var out bytes.Buffer
	slow := writeBaseline([]benchResult{{Op: "reconstruct/union", Workers: 1, MBPerS: 1.3}})
	if err := assertOpImproves(slow, "reconstruct/union", results, &out); err != nil {
		t.Fatalf("faster run rejected: %v", err)
	}
	fast := writeBaseline([]benchResult{{Op: "reconstruct/union", Workers: 1, MBPerS: 500}})
	if err := assertOpImproves(fast, "reconstruct/union", results, &out); err == nil {
		t.Fatal("regressed run accepted")
	}
	if err := assertOpImproves(slow, "no/such-op", results, &out); err == nil {
		t.Fatal("missing op accepted")
	}
	if err := assertOpImproves(filepath.Join(t.TempDir(), "missing.json"), "reconstruct/union", results, &out); err == nil {
		t.Fatal("unreadable baseline accepted")
	}
}

// TestCmdBenchRejectsArgs: bench takes flags only.
func TestCmdBenchRejectsArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := cmdBench([]string{"extra"}, &stdout, &stderr)
	if _, ok := err.(usageError); !ok {
		t.Fatalf("want usageError, got %v", err)
	}
}
