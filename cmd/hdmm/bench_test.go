package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	hdmm "repro"
)

// TestCmdBench runs the harness at the shortest measurement window and
// checks the BENCH_5-format artifact: every expected op is present with
// sane fields, so the CI bench job cannot silently upload an empty or
// malformed trajectory.
func TestCmdBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	prevBackend := hdmm.KernelBackend()
	var stdout, stderr bytes.Buffer
	if err := cmdBench([]string{"-benchtime", "1", "-workers", "1,2", "-kernels", "reference,fast", "-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("cmdBench: %v\nstderr: %s", err, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []benchResult
	if err := json.Unmarshal(blob, &results); err != nil {
		t.Fatalf("BENCH json: %v", err)
	}
	want := map[string]bool{
		"kron/matvec": false, "kron/mattvec": false, "kron/matmul16": false,
		"reconstruct/kron": false, "reconstruct/union": false,
		"reconstruct/union-batch16": false, "reconstruct/union-warm": false,
		"serve/answer512": false, "snapshot/roundtrip": false,
	}
	workerRows := map[int]int{}
	kernelRows := map[string]int{}
	for _, r := range results {
		if _, ok := want[r.Op]; ok {
			want[r.Op] = true
		}
		workerRows[r.Workers]++
		kernelRows[r.Kernels]++
		if r.NsPerOp <= 0 || r.Iters <= 0 || r.Workers <= 0 {
			t.Errorf("%s (workers=%d): non-positive measurement %+v", r.Op, r.Workers, r)
		}
		if r.AllocsPerOp < 0 || r.MBPerS < 0 {
			t.Errorf("%s: negative counters %+v", r.Op, r)
		}
		if r.GOARCH != runtime.GOARCH {
			t.Errorf("%s: GOARCH = %q, want %q", r.Op, r.GOARCH, runtime.GOARCH)
		}
	}
	for op, seen := range want {
		if !seen {
			t.Errorf("op %s missing from results", op)
		}
	}
	// 2 worker counts × 2 backends: every op must appear in each cell.
	if workerRows[1] != 2*len(want) || workerRows[2] != 2*len(want) {
		t.Errorf("worker sweep rows = %v, want %d per requested count", workerRows, 2*len(want))
	}
	if kernelRows["reference"] != 2*len(want) || kernelRows["fast"] != 2*len(want) {
		t.Errorf("kernel sweep rows = %v, want %d per backend", kernelRows, 2*len(want))
	}
	if got := hdmm.KernelBackend(); got != prevBackend {
		t.Errorf("cmdBench left kernel backend %q, want prior %q restored", got, prevBackend)
	}
}

// TestParseWorkerSet: the sweep flag deduplicates, keeps order, and rejects
// garbage; the default sweep is bounded by GOMAXPROCS and starts at 1.
func TestParseWorkerSet(t *testing.T) {
	set, err := parseWorkerSet("4, 1,4,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 || set[0] != 4 || set[1] != 1 || set[2] != 8 {
		t.Fatalf("parseWorkerSet = %v", set)
	}
	for _, bad := range []string{"0", "-2", "x", "1,,2"} {
		if _, err := parseWorkerSet(bad); err == nil {
			t.Errorf("parseWorkerSet(%q) accepted", bad)
		}
	}
	def, err := parseWorkerSet("")
	if err != nil || len(def) == 0 || def[0] != 1 {
		t.Fatalf("default sweep = %v, %v", def, err)
	}
	seen := map[int]bool{}
	for _, w := range def {
		if seen[w] {
			t.Fatalf("default sweep has duplicate %d: %v", w, def)
		}
		seen[w] = true
	}
}

// TestParseKernelSet: the backend sweep flag deduplicates, keeps order,
// rejects unknown backends, and defaults to the active backend only.
func TestParseKernelSet(t *testing.T) {
	set, err := parseKernelSet("fast, reference,fast")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0] != "fast" || set[1] != "reference" {
		t.Fatalf("parseKernelSet = %v", set)
	}
	for _, bad := range []string{"turbo", "reference,,fast", "fast,scalar"} {
		if _, err := parseKernelSet(bad); err == nil {
			t.Errorf("parseKernelSet(%q) accepted", bad)
		}
	}
	def, err := parseKernelSet("")
	if err != nil || len(def) != 1 || def[0] != hdmm.KernelBackend() {
		t.Fatalf("default sweep = %v, %v (active backend %q)", def, err, hdmm.KernelBackend())
	}
}

// TestAssertImproves covers the CI regression gate: a run must beat the
// baseline's best MB/s for the asserted op, and a baseline it cannot beat
// (or that lacks the op) is an error. Entries may carry a KERNELS: prefix
// restricting the current side to one backend's rows.
func TestAssertImproves(t *testing.T) {
	results := []benchResult{
		{Op: "reconstruct/union", Workers: 1, MBPerS: 50},
		{Op: "reconstruct/union", Workers: 2, MBPerS: 70},
	}
	writeBaseline := func(rows []benchResult) string {
		blob, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var out bytes.Buffer
	slow := writeBaseline([]benchResult{{Op: "reconstruct/union", Workers: 1, MBPerS: 1.3}})
	if err := assertOpImproves(slow, "reconstruct/union", results, &out); err != nil {
		t.Fatalf("faster run rejected: %v", err)
	}
	fast := writeBaseline([]benchResult{{Op: "reconstruct/union", Workers: 1, MBPerS: 500}})
	if err := assertOpImproves(fast, "reconstruct/union", results, &out); err == nil {
		t.Fatal("regressed run accepted")
	}
	if err := assertOpImproves(slow, "no/such-op", results, &out); err == nil {
		t.Fatal("missing op accepted")
	}
	if err := assertOpImproves(filepath.Join(t.TempDir(), "missing.json"), "reconstruct/union", results, &out); err == nil {
		t.Fatal("unreadable baseline accepted")
	}

	// Backend-qualified entries: the current side is filtered to that
	// backend's rows, the baseline side (a pre-backend artifact with no
	// kernels field) is not.
	tagged := []benchResult{
		{Op: "kron/matvec", Kernels: "reference", Workers: 1, MBPerS: 100},
		{Op: "kron/matvec", Kernels: "fast", Workers: 1, MBPerS: 250},
	}
	if err := assertOpImproves(writeBaseline([]benchResult{{Op: "kron/matvec", Workers: 1, MBPerS: 120}}),
		"fast:kron/matvec", tagged, &out); err != nil {
		t.Fatalf("fast rows beat baseline but gate rejected: %v", err)
	}
	if err := assertOpImproves(writeBaseline([]benchResult{{Op: "kron/matvec", Workers: 1, MBPerS: 300}}),
		"fast:kron/matvec", tagged, &out); err == nil {
		t.Fatal("regressed fast rows accepted")
	}
	if err := assertOpImproves(slow, "turbo:reconstruct/union", results, &out); err == nil {
		t.Fatal("unknown backend prefix accepted")
	}
	// Multi-entry spec: every entry must pass; one failing entry fails the
	// gate even when an earlier entry improved.
	multi := writeBaseline([]benchResult{
		{Op: "kron/matvec", Workers: 1, MBPerS: 120},
		{Op: "reconstruct/union", Workers: 1, MBPerS: 1.3},
	})
	both := append(append([]benchResult{}, results...), tagged...)
	if err := assertOpImproves(multi, "reconstruct/union, fast:kron/matvec", both, &out); err != nil {
		t.Fatalf("multi-entry gate rejected improving run: %v", err)
	}
	if err := assertOpImproves(multi, "reconstruct/union,reference:kron/matvec", both, &out); err == nil {
		t.Fatal("multi-entry gate passed despite reference:kron/matvec regressing")
	}
}

// TestCmdBenchRejectsArgs: bench takes flags only.
func TestCmdBenchRejectsArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := cmdBench([]string{"extra"}, &stdout, &stderr)
	if _, ok := err.(usageError); !ok {
		t.Fatalf("want usageError, got %v", err)
	}
}
