// Command hdmmlint is the vettool that machine-enforces this
// repository's three correctness invariants — privacy (a measurement
// is an irrevocable ε-spend), determinism (fixed seed ⇒ byte-identical
// output at any worker count) and durability (persisted state goes
// through crash-safe atomic writes) — plus context propagation on the
// request path. Run it through the build system:
//
//	go build -o hdmmlint ./cmd/hdmmlint
//	go vet -vettool=./hdmmlint ./...
//
// Suppressions use //hdmmlint:allow <analyzer> <reason> on the flagged
// line or the line above it; the reason is mandatory and stale
// suppressions are themselves reported.
package main

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicwrite"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detrand"
	"repro/internal/lint/epsilonspend"
	"repro/internal/lint/maporder"
)

// Analyzers in invariant order: privacy, determinism (two), durability,
// request flow.
func main() {
	analysis.Main(
		epsilonspend.Analyzer,
		detrand.Analyzer,
		maporder.Analyzer,
		atomicwrite.Analyzer,
		ctxflow.Analyzer,
	)
}
