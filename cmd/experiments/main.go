// Command experiments regenerates the tables and figures of the HDMM paper
// (McKenna et al., PVLDB 2018). Each subcommand prints the corresponding
// table/series; -scale small|default|paper trades runtime for fidelity to
// the paper's configuration (see EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-scale default] table3|table4a|table4b|table5|table6|
//	            fig1a|fig1b|fig1c|fig1d|fig2|fig3|fig4|fig5|fig6|all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

var runners = map[string]func(experiments.Scale) string{
	"table3":   experiments.Table3,
	"table4a":  experiments.Table4a,
	"table4b":  experiments.Table4b,
	"table5":   experiments.Table5,
	"table6":   experiments.Table6,
	"fig1a":    experiments.Fig1a,
	"fig1b":    experiments.Fig1b,
	"fig1c":    experiments.Fig1c,
	"fig1d":    experiments.Fig1d,
	"fig2":     experiments.Fig2,
	"fig3":     experiments.Fig3,
	"fig4":     experiments.Fig4,
	"fig5":     experiments.Fig5,
	"fig6":     experiments.Fig6,
	"ablation": experiments.Ablation,
}

// order fixes the presentation order for "all".
var order = []string{
	"table3", "table4a", "table4b", "table5", "table6",
	"fig1a", "fig1b", "fig1c", "fig1d", "fig2", "fig3", "fig4", "fig5", "fig6",
	"ablation",
}

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: small|default|paper")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale small|default|paper] <experiment>\n\nexperiments:\n")
		for _, name := range order {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		fmt.Fprintf(os.Stderr, "  all\n")
	}
	flag.Parse()
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range order {
			run(n, scale)
		}
		return
	}
	if _, ok := runners[name]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	run(name, scale)
}

func run(name string, scale experiments.Scale) {
	start := time.Now()
	fmt.Println(runners[name](scale))
	fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
}
